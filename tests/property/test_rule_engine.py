"""Differential suite for the compiled rule engine and the interned inventory.

The compiled single-pass rule engine (``compiled_rules=True``, the default)
and the indexed analysis context must be a *pure acceleration* of the seed
pipeline: one fused walk over shared indexes has to produce byte-identical
findings, in byte-identical order, to the rule-at-a-time reference path with
its per-call linear scans.  Likewise the content-interned inventory build
(sealed shared objects, shared-reference render-cache hits) must be
observably equivalent to the un-interned reference build.

Three layers of evidence:

* **whole-catalogue differentials** (slow): all 290 charts, with and without
  network-policy overrides, compiled vs reference reports diffed
  byte-for-byte through the shared canonical differ;
* **Hypothesis app specs**: arbitrary injection plans and archetypes;
* **unit-level properties**: interning identity and immutability, context
  index vs linear scan (including ownerless snapshots), inventory and
  registry caching, the skeleton parse-memo guard hook.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import AnalyzerSettings, MisconfigurationAnalyzer
from repro.core.context import AnalysisContext
from repro.core.rules import RuleRegistry, default_rules, evaluate_fused
from repro.datasets import InjectionPlan, build_application, build_catalog
from repro.experiments import run_full_evaluation
from repro.helm import render_chart, shared_render_cache, skeleton_parse_count
from repro.k8s import (
    ImmutableObjectError,
    Inventory,
    clear_intern_table,
    intern_object,
    intern_stats,
    objects_from_dicts,
)
from repro.probe import PodSnapshot, RuntimeObservation
from repro.probe.snapshot import ClusterSnapshot, SocketRecord

from tests.support.diffing import assert_identical, canonical_evaluation, canonical_report

ARCHETYPES = ("web", "database", "monitoring", "messaging", "pipeline", "microservices")

POLICY_OVERRIDES = {"networkPolicy": {"enabled": True}}


@pytest.fixture(scope="module")
def catalog_apps():
    return build_catalog()


def compiled_analyzer() -> MisconfigurationAnalyzer:
    return MisconfigurationAnalyzer(settings=AnalyzerSettings(compiled_rules=True))


def reference_analyzer() -> MisconfigurationAnalyzer:
    """The seed shape: one rule at a time, per-call linear scans."""
    return MisconfigurationAnalyzer(settings=AnalyzerSettings(compiled_rules=False))


def _reports_for(app, overrides=None):
    """One (reference, compiled) report pair over identical inputs."""
    reference = reference_analyzer()
    compiled = compiled_analyzer()
    rendered = render_chart(app.chart, overrides=overrides)
    observation = reference.session.observe(rendered, app.behaviors)
    ref = reference.analyze_rendered(rendered, observation=observation, dataset=app.dataset)
    cmp_rendered = render_chart(app.chart, overrides=overrides)
    cmp_observation = compiled.session.observe(cmp_rendered, app.behaviors)
    cmp = compiled.analyze_rendered(
        cmp_rendered, observation=cmp_observation, dataset=app.dataset
    )
    return ref, cmp


# ---------------------------------------------------------------------------
# Whole-catalogue differentials
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_catalogue_reports_compiled_equals_reference(catalog_apps):
    """Per-chart reports: fused single pass == rule-at-a-time, byte for byte."""
    for app in catalog_apps:
        ref, cmp = _reports_for(app)
        assert_identical(
            canonical_report(ref), canonical_report(cmp),
            label=f"rules/{app.dataset}/{app.name}",
        )


@pytest.mark.slow
def test_catalogue_reports_identical_with_policy_overrides(catalog_apps):
    """The same differential with network policies force-enabled."""
    for app in catalog_apps:
        if not app.defines_network_policies:
            continue
        ref, cmp = _reports_for(app, overrides=POLICY_OVERRIDES)
        assert_identical(
            canonical_report(ref), canonical_report(cmp),
            label=f"rules+netpol/{app.dataset}/{app.name}",
        )


@pytest.mark.slow
def test_catalogue_evaluation_end_to_end_compiled_equals_reference(catalog_apps):
    """Full pipeline (observation, rules, cluster-wide M4* pass) agrees."""
    reference = run_full_evaluation(
        applications=catalog_apps, analyzer=reference_analyzer()
    )
    compiled = run_full_evaluation(applications=catalog_apps, analyzer=compiled_analyzer())
    assert_identical(
        canonical_evaluation(reference), canonical_evaluation(compiled),
        label="evaluation/compiled-vs-reference",
    )


@pytest.mark.slow
def test_catalogue_interned_build_equals_uninterned(catalog_apps):
    """Interned (sealed, shared) objects serialize identically to fresh ones."""
    for app in catalog_apps:
        interned = render_chart(app.chart)  # default: interned, shared cache
        fresh = render_chart(app.chart, cached=False)  # reference: un-interned
        assert [obj.to_dict() for obj in interned.objects] == [
            obj.to_dict() for obj in fresh.objects
        ], app.name
        assert interned.documents == fresh.documents, app.name


# ---------------------------------------------------------------------------
# Hypothesis-generated app specs
# ---------------------------------------------------------------------------


@st.composite
def injection_plans(draw):
    m1 = draw(st.integers(min_value=0, max_value=3))
    return InjectionPlan(
        m1=m1,
        m2=draw(st.integers(min_value=0, max_value=2)),
        m3=draw(st.integers(min_value=0, max_value=2)),
        m4a=draw(st.integers(min_value=0, max_value=1)),
        m4b=draw(st.integers(min_value=0, max_value=1)),
        m4c=draw(st.integers(min_value=0, max_value=1)),
        m5a=draw(st.integers(min_value=0, max_value=1)),
        m5b=draw(st.integers(min_value=0, max_value=m1)),
        m5c=draw(st.integers(min_value=0, max_value=1)),
        m5d=draw(st.integers(min_value=0, max_value=1)),
        m6=draw(st.booleans()),
        m7=draw(st.integers(min_value=0, max_value=1)),
        global_collision=draw(st.booleans()),
    )


@st.composite
def built_applications(draw):
    plan = draw(injection_plans())
    archetype = draw(st.sampled_from(ARCHETYPES))
    return build_application(
        "gen-app", "Gen Org", plan, archetype=archetype, dataset="generated"
    )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(app=built_applications())
def test_generated_specs_compiled_equals_reference(app):
    ref, cmp = _reports_for(app)
    assert_identical(
        canonical_report(ref), canonical_report(cmp), label="generated/compiled-report"
    )


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(app=built_applications())
def test_generated_specs_static_mode_compiled_equals_reference(app):
    """No runtime observation: only the static rules are applicable."""
    rendered = render_chart(app.chart)
    ref = reference_analyzer().analyze_rendered(rendered, dataset="generated")
    cmp = compiled_analyzer().analyze_rendered(rendered, dataset="generated")
    assert_identical(
        canonical_report(ref), canonical_report(cmp), label="generated/static-report"
    )


# ---------------------------------------------------------------------------
# Fused-engine mechanics
# ---------------------------------------------------------------------------


class _CustomRule:
    """A rule without compile support: must fall back to evaluate()."""


def test_unknown_rules_fall_back_to_evaluate(catalog_apps):
    from repro.core.findings import Finding, MisconfigClass
    from repro.core.rules.base import Rule

    class TattleRule(Rule):
        produces = (MisconfigClass.M7,)
        requires = "static"

        def __init__(self):
            self.calls = 0

        def evaluate(self, context):
            self.calls += 1
            return [
                Finding(
                    misconfig_class=MisconfigClass.M7,
                    application=context.application,
                    resource="custom",
                    message="custom rule ran",
                )
            ]

    custom = TattleRule()
    registry = default_rules()
    registry.register(custom)
    app = catalog_apps[0]
    rendered = render_chart(app.chart)
    analyzer = MisconfigurationAnalyzer(rules=registry)
    observation = analyzer.session.observe(rendered, app.behaviors)
    report = analyzer.analyze_rendered(rendered, observation=observation)
    assert custom.calls == 1
    assert any(f.resource == "custom" for f in report.findings)


def test_fused_bucket_order_matches_registry_order(catalog_apps):
    app = catalog_apps[0]
    rendered = render_chart(app.chart)
    registry = default_rules()
    context = AnalysisContext(application="order", inventory=Inventory(rendered.objects))
    pairs = evaluate_fused(registry, context)
    assert [rule.name for rule, _ in pairs] == [
        rule.name for rule in registry.rules_for(context)
    ]
    for rule, findings in pairs:
        assert findings == rule.evaluate(context)


# ---------------------------------------------------------------------------
# Interning properties
# ---------------------------------------------------------------------------


DOC = {
    "apiVersion": "v1",
    "kind": "Service",
    "metadata": {"name": "svc", "labels": {"app": "demo"}},
    "spec": {"selector": {"app": "demo"}, "ports": [{"port": 80}]},
}


class TestInterning:
    def test_same_fingerprint_same_identity(self):
        clear_intern_table()
        first = intern_object(DOC)
        second = intern_object(copy.deepcopy(DOC))
        assert first is second
        assert intern_stats()["hits"] == 1
        assert intern_stats()["misses"] == 1

    def test_different_content_different_identity(self):
        clear_intern_table()
        other = copy.deepcopy(DOC)
        other["metadata"]["name"] = "other"
        assert intern_object(DOC) is not intern_object(other)

    def test_interned_objects_reject_mutation(self):
        obj = intern_object(DOC)
        with pytest.raises(ImmutableObjectError):
            obj.metadata.namespace = "mutated"
        with pytest.raises(ImmutableObjectError):
            obj.metadata = None
        with pytest.raises(ImmutableObjectError):
            obj.cluster_ip = "10.0.0.1"

    def test_interned_workload_spec_is_sealed(self):
        doc = {
            "apiVersion": "apps/v1",
            "kind": "Deployment",
            "metadata": {"name": "web"},
            "spec": {
                "replicas": 2,
                "template": {
                    "metadata": {"labels": {"app": "web"}},
                    "spec": {"containers": [{"name": "c", "image": "nginx"}]},
                },
            },
        }
        obj = intern_object(doc)
        with pytest.raises(ImmutableObjectError):
            obj.template.spec.host_network = True
        with pytest.raises(ImmutableObjectError):
            obj.template.metadata.labels = None
        # The seal walk descends into list payloads: containers are sealed.
        with pytest.raises(ImmutableObjectError):
            obj.template.spec.containers[0].image = "evil"

    def test_deepcopy_thaws(self):
        obj = intern_object(DOC)
        thawed = copy.deepcopy(obj)
        thawed.metadata.namespace = "patched"  # must not raise
        assert thawed.to_dict() != obj.to_dict()
        # and the interned original is untouched
        assert obj.metadata.namespace == "default"

    def test_uninterned_build_returns_fresh_mutable_objects(self):
        first = objects_from_dicts([DOC])[0]
        second = objects_from_dicts([DOC])[0]
        assert first is not second
        first.metadata.namespace = "mutated"  # reference objects stay mutable

    def test_warm_render_hits_share_object_identity(self, catalog_apps):
        app = catalog_apps[0]
        shared_render_cache().clear()
        first = render_chart(app.chart)
        second = render_chart(app.chart)
        assert all(a is b for a, b in zip(first.objects, second.objects))

    def test_validation_memo_only_on_sealed_objects(self):
        obj = objects_from_dicts([DOC])[0]
        obj.validate_cached()
        assert obj._validated is False  # unsealed: never memoized
        sealed = intern_object(DOC)
        sealed.validate_cached()
        assert sealed._validated is True


# ---------------------------------------------------------------------------
# Inventory / registry caching
# ---------------------------------------------------------------------------


class TestInventoryCaching:
    def test_query_lists_are_cached(self, catalog_apps):
        inventory = Inventory(render_chart(catalog_apps[0].chart).objects)
        assert inventory.compute_units() is inventory.compute_units()
        assert inventory.services() is inventory.services()
        assert inventory.network_policies() is inventory.network_policies()
        assert inventory.of_kind("Service") is inventory.of_kind("Service")

    def test_selector_queries_match_seed_semantics(self, catalog_apps):
        rendered = render_chart(catalog_apps[1].chart)
        inventory = Inventory(rendered.objects)
        for service in inventory.services():
            expected = [
                unit
                for unit in inventory.compute_units()
                if unit.namespace == service.namespace
                and service.has_selector
                and service.selector.matches(unit.pod_labels())
            ]
            assert inventory.compute_units_selected_by(service) == expected
        for unit in inventory.compute_units():
            labels = unit.pod_labels()
            expected = [
                service
                for service in inventory.services()
                if service.namespace == unit.namespace
                and service.has_selector
                and service.selector.matches(labels)
            ]
            assert inventory.services_selecting(labels, unit.namespace) == expected
            expected_policies = [
                policy
                for policy in inventory.network_policies()
                if policy.selects(labels, unit.namespace)
            ]
            assert inventory.policies_selecting(labels, unit.namespace) == expected_policies

    def test_inventory_pickles_without_caches(self, catalog_apps):
        import pickle

        inventory = Inventory(render_chart(catalog_apps[0].chart).objects)
        inventory.compute_units()  # build some caches
        clone = pickle.loads(pickle.dumps(inventory))
        assert len(clone) == len(inventory)
        assert [obj.to_dict() for obj in clone] == [obj.to_dict() for obj in inventory]

    def test_registry_rules_cached_and_invalidated(self):
        registry = default_rules()
        snapshot = registry.rules()
        assert registry.rules() is snapshot
        extra = snapshot[0]
        registry.register(extra)
        refreshed = registry.rules()
        assert refreshed is not snapshot
        assert len(refreshed) == len(snapshot) + 1


# ---------------------------------------------------------------------------
# Context index vs linear scan
# ---------------------------------------------------------------------------


def _observation_with_ownerless() -> RuntimeObservation:
    """An observation mixing owner-tagged and ownerless snapshots."""
    def snap(name, owner, ports=(80,), sequence=0):
        return PodSnapshot(
            pod_name=name,
            namespace="default",
            app="mix",
            owner=owner,
            sockets=[SocketRecord(port=p) for p in ports],
        )

    first = ClusterSnapshot(
        pods=[
            snap("web-0", "Deployment/default/web"),
            snap("web-extra", "", ports=(81,)),
            snap("web-1", "Deployment/default/web"),
            snap("db-0", "StatefulSet/default/db", ports=(5432,)),
        ]
    )
    second = ClusterSnapshot(
        pods=[
            snap("web-0", "Deployment/default/web"),
            snap("web-extra", "", ports=(81, 9000)),
            snap("web-1", "Deployment/default/web", ports=(80, 8080)),
            snap("db-0", "StatefulSet/default/db", ports=(5432,)),
        ],
        sequence=1,
    )
    return RuntimeObservation(app="mix", first=first, second=second)


def test_snapshot_index_matches_linear_scan():
    observation = _observation_with_ownerless()
    objects = objects_from_dicts(
        [
            {
                "apiVersion": "apps/v1",
                "kind": "Deployment",
                "metadata": {"name": "web"},
                "spec": {
                    "template": {
                        "metadata": {"labels": {"app": "web"}},
                        "spec": {"containers": [{"name": "c", "image": "i"}]},
                    }
                },
            },
            {
                "apiVersion": "apps/v1",
                "kind": "StatefulSet",
                "metadata": {"name": "db"},
                "spec": {
                    "template": {
                        "metadata": {"labels": {"app": "db"}},
                        "spec": {"containers": [{"name": "c", "image": "i"}]},
                    }
                },
            },
        ]
    )
    indexed = AnalysisContext(
        application="mix", inventory=Inventory(objects), observation=observation
    )
    scanned = AnalysisContext(
        application="mix",
        inventory=Inventory(objects),
        observation=observation,
        indexed=False,
    )
    for unit_i, unit_s in zip(
        indexed.compute_units(), scanned.compute_units()
    ):
        snaps_i = indexed.snapshots_for(unit_i)
        snaps_s = scanned.snapshots_for(unit_s)
        assert [s.pod_name for s in snaps_i] == [s.pod_name for s in snaps_s]
        # The ownerless prefix match must splice back in observation order.
        for protocol in ("TCP", "UDP"):
            assert indexed.stable_open_ports(unit_i, protocol) == scanned.stable_open_ports(
                unit_s, protocol
            )
            assert indexed.dynamic_ports(unit_i, protocol) == scanned.dynamic_ports(
                unit_s, protocol
            )
    web = indexed.compute_units()[0]
    assert [s.pod_name for s in indexed.snapshots_for(web)] == [
        "web-0",
        "web-extra",
        "web-1",
    ]


# ---------------------------------------------------------------------------
# Skeleton parse memo guard
# ---------------------------------------------------------------------------


def test_override_variants_do_not_reparse_structured_skeletons(catalog_apps):
    """The Figure 4b shape: per-variant renders reuse memoized skeleton parses.

    Values that only flow through structured fragments leave the skeleton
    text untouched, so after the first render of each variant family the
    parse counter must stay flat across *cold* re-renders (fresh renderer,
    no render cache).
    """
    app = next(a for a in catalog_apps if a.defines_network_policies)
    from repro.helm import HelmRenderer

    renderer = HelmRenderer()
    renderer.render_structured(app.chart, interned=True)
    renderer.render_structured(app.chart, overrides=POLICY_OVERRIDES, interned=True)
    before = skeleton_parse_count()
    renderer.render_structured(app.chart, interned=True)
    renderer.render_structured(app.chart, overrides=POLICY_OVERRIDES, interned=True)
    same_skeletons = skeleton_parse_count() - before
    # Re-rendering the same chart/override pairs must not parse anything new.
    assert same_skeletons == 0


def test_skeleton_memo_is_isolated_from_document_mutation(catalog_apps):
    """Un-interned consumers get copies: mutating them cannot poison the memo."""
    app = catalog_apps[0]
    from repro.helm import HelmRenderer

    renderer = HelmRenderer()
    first = renderer.render_structured(app.chart)  # un-interned: mutable copies
    pristine = copy.deepcopy(first.documents)
    for document in first.documents:
        document.clear()
    second = renderer.render_structured(app.chart)
    assert second.documents == pristine
