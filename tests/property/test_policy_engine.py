"""Differential property tests: compiled policy engine == naive evaluator.

The compiled engine (PolicyIndex + enforcer memoization + ReachabilityMatrix)
must be a *pure acceleration* of the naive per-attempt evaluation kept behind
``use_index=False``.  Hypothesis generates randomized pods, sockets, services
and policies (including matchExpressions, namespace selectors, named ports
and port ranges) and asserts identical ``PolicyDecision``s and identical
reachable-endpoint surfaces -- plus cache invalidation across real cluster
mutations (install / uninstall / restart / direct API writes).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster import (
    ClusterNetwork,
    Cluster,
    EndpointController,
    NetworkPolicyEnforcer,
    Node,
    PodNotFound,
    PolicyIndex,
    RunningPod,
    Socket,
)
from repro.k8s import (
    Container,
    ContainerPort,
    LabelSelectorRequirement,
    LabelSet,
    NetworkPolicy,
    NetworkPolicyPeer,
    NetworkPolicyPort,
    NetworkPolicyRule,
    ObjectMeta,
    Pod,
    PodSpec,
    Selector,
    Service,
    ServicePort,
    allow_ports_policy,
    deny_all_policy,
    equality_selector,
)
import pytest

from tests.conftest import make_deployment, make_pod, make_service

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

NAMESPACES = ("default", "prod")
NAMESPACE_LABELS = {
    "default": {"kubernetes.io/metadata.name": "default", "env": "dev"},
    "prod": {"kubernetes.io/metadata.name": "prod", "env": "prod"},
}
LABEL_KEYS = ("app", "tier", "role")
LABEL_VALUES = ("web", "db", "cache")
PORTS = (80, 8080, 9090)

namespaces = st.sampled_from(NAMESPACES)
label_dicts = st.dictionaries(
    st.sampled_from(LABEL_KEYS), st.sampled_from(LABEL_VALUES), max_size=3
)

selectors = st.one_of(
    st.builds(lambda labels: Selector(match_labels=LabelSet(labels)), label_dicts),
    st.builds(
        lambda key, op, values: Selector(
            match_expressions=(
                LabelSelectorRequirement(
                    key=key,
                    operator=op,
                    values=tuple(values) if op in ("In", "NotIn") else (),
                ),
            )
        ),
        st.sampled_from(LABEL_KEYS),
        st.sampled_from(("In", "NotIn", "Exists", "DoesNotExist")),
        st.lists(st.sampled_from(LABEL_VALUES), min_size=1, max_size=2),
    ),
)

peers = st.builds(
    NetworkPolicyPeer,
    pod_selector=st.one_of(st.none(), selectors),
    namespace_selector=st.one_of(
        st.none(),
        st.builds(lambda env: Selector(match_labels=LabelSet({"env": env})),
                  st.sampled_from(("dev", "prod"))),
    ),
)

policy_ports = st.one_of(
    st.builds(NetworkPolicyPort, port=st.sampled_from(PORTS)),
    st.builds(NetworkPolicyPort, port=st.just(None)),
    st.builds(NetworkPolicyPort, port=st.just("http")),
    st.builds(NetworkPolicyPort, port=st.just(8000), end_port=st.just(9500)),
)

rules = st.builds(
    NetworkPolicyRule,
    peers=st.lists(peers, max_size=2),
    ports=st.lists(policy_ports, max_size=2),
)


@st.composite
def network_policies(draw, index: int = 0):
    return NetworkPolicy(
        metadata=ObjectMeta(name=f"policy-{draw(st.integers(0, 999))}-{index}",
                            namespace=draw(namespaces)),
        pod_selector=draw(selectors),
        policy_types=draw(st.sampled_from((["Ingress"], ["Ingress", "Egress"], ["Egress"]))),
        ingress=draw(st.lists(rules, max_size=2)),
    )


@st.composite
def running_pods(draw, index: int):
    namespace = draw(namespaces)
    labels = draw(label_dicts)
    host_network = draw(st.booleans()) and draw(st.booleans())  # ~25% hostNetwork
    ports = draw(st.lists(st.sampled_from(PORTS), min_size=1, max_size=2, unique=True))
    loopback = draw(st.booleans()) and draw(st.booleans())
    pod = Pod(
        metadata=ObjectMeta(name=f"pod-{index}", namespace=namespace,
                            labels=LabelSet(labels)),
        spec=PodSpec(
            containers=[
                Container(
                    name="main",
                    image="prop/app",
                    ports=[ContainerPort(8080, name="http")],
                )
            ],
            host_network=host_network,
        ),
    )
    sockets = [
        Socket(
            port=port,
            protocol="TCP",
            interface="127.0.0.1" if loopback and i == 0 else "0.0.0.0",
            container="main",
        )
        for i, port in enumerate(ports)
    ]
    return RunningPod(pod=pod, ip=f"10.0.0.{index + 1}", node=Node(name="prop-node"),
                      sockets=sockets, app=f"app-{index % 3}")


@st.composite
def scenarios(draw):
    pods = [draw(running_pods(i)) for i in range(draw(st.integers(2, 5)))]
    policies = [draw(network_policies(i)) for i in range(draw(st.integers(0, 4)))]
    services = []
    for i in range(draw(st.integers(0, 2))):
        services.append(
            Service(
                metadata=ObjectMeta(name=f"svc-{i}", namespace=draw(namespaces)),
                selector=Selector(match_labels=LabelSet(draw(label_dicts))),
                ports=[ServicePort(port=80, target_port=draw(st.sampled_from((8080, "http"))),
                                   name="main")],
            )
        )
    bindings = EndpointController().bind(services, pods)
    return pods, policies, bindings


def engines():
    naive = ClusterNetwork(
        enforcer=NetworkPolicyEnforcer(NAMESPACE_LABELS, use_index=False)
    )
    compiled = ClusterNetwork(enforcer=NetworkPolicyEnforcer(NAMESPACE_LABELS))
    return naive, compiled


# ---------------------------------------------------------------------------
# Differential properties
# ---------------------------------------------------------------------------


class TestCompiledEngineEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(scenarios())
    def test_decisions_identical_for_every_pair_and_port(self, scenario):
        pods, policies, _ = scenario
        naive, compiled = engines()
        index = PolicyIndex(policies)
        for source in pods:
            for destination in pods:
                for port in (*PORTS, 9000):
                    expected = naive.enforcer.check_ingress(
                        policies, source, destination, port
                    )
                    via_list = compiled.enforcer.check_ingress(
                        policies, source, destination, port
                    )
                    via_index = compiled.enforcer.check_ingress(
                        index, source, destination, port
                    )
                    assert via_list == expected
                    assert via_index == expected

    @settings(max_examples=40, deadline=None)
    @given(scenarios())
    def test_isolating_sets_and_partition_identical(self, scenario):
        pods, policies, _ = scenario
        naive, compiled = engines()
        index = PolicyIndex(policies)
        for pod in pods:
            expected = naive.enforcer.policies_isolating(policies, pod)
            assert compiled.enforcer.policies_isolating(policies, pod) == expected
            assert list(index.isolating(pod)) == expected
        isolated, unprotected = compiled.enforcer.partition_pods(policies, pods)
        assert isolated == naive.enforcer.isolated_pods(policies, pods)
        assert unprotected == naive.enforcer.unprotected_pods(policies, pods)

    @settings(max_examples=30, deadline=None)
    @given(scenarios())
    def test_reachable_surfaces_identical(self, scenario):
        pods, policies, bindings = scenario
        naive, compiled = engines()
        matrix = compiled.reachability_matrix(policies, pods, bindings)
        grouped = compiled.reachability_matrix(policies, pods, bindings, vectorized=False)
        for source in pods:
            expected = naive.reachable_endpoints(policies, source, pods, bindings)
            assert compiled.reachable_endpoints(policies, source, pods, bindings) == expected
            assert matrix.endpoints_from(source) == expected
            assert grouped.endpoints_from(source) == expected
        assert matrix.all_pairs() == grouped.all_pairs() == {
            (source.namespace, source.name): naive.reachable_endpoints(
                policies, source, pods, bindings
            )
            for source in pods
        }

    @settings(max_examples=20, deadline=None)
    @given(scenarios())
    def test_service_connections_identical(self, scenario):
        pods, policies, bindings = scenario
        naive, compiled = engines()
        matrix = compiled.reachability_matrix(policies, pods, bindings)
        for source in pods[:2]:
            for binding in bindings:
                for port in (80, 443):
                    expected = naive.connect_pod_to_service(
                        policies, source, binding, port
                    )
                    assert (
                        compiled.connect_pod_to_service(policies, source, binding, port)
                        == expected
                    )
                    assert matrix.connect_via_service(source, binding, port) == expected


# ---------------------------------------------------------------------------
# Cache invalidation across real cluster mutations
# ---------------------------------------------------------------------------


class TestAdaptiveDecisionTiers:
    """Pin the matrix's naive-cost first tier and port-free class collapse."""

    def _scenario(self, rule_ports):
        web = _make_running(
            "web-0",
            "default",
            {"app": "web"},
            [
                Socket(port=p, protocol="TCP", interface="0.0.0.0", container="main")
                for p in (80, 8080, 9090)
            ],
            "10.9.0.1",
        )
        client = _make_running("client-0", "default", {"app": "client"}, [], "10.9.0.2")
        policy = NetworkPolicy(
            metadata=ObjectMeta(name="allow-client", namespace="default"),
            pod_selector=equality_selector(app="web"),
            policy_types=["Ingress"],
            ingress=[
                NetworkPolicyRule(
                    peers=[NetworkPolicyPeer(pod_selector=equality_selector(app="client"))],
                    ports=rule_ports,
                )
            ],
        )
        return [web, client], [policy]

    def test_naive_tier_defers_memoization_then_promotes(self):
        pods, policies = self._scenario([])
        naive, compiled = engines()
        web, client = pods
        matrix = compiled.reachability_matrix(policies, pods, [])
        for i, port in enumerate((80, 8080, 9090)):
            expected = naive.enforcer.check_ingress(policies, client, web, port)
            assert matrix.decision(client, web, port) == expected
            # The first two decisions ride the naive-cost tier (no memo
            # machinery engaged); the third promotes to the memoized path.
            assert len(matrix._decisions) == (0 if i < 2 else 1)

    def test_port_free_isolating_sets_share_one_decision_class(self):
        pods, policies = self._scenario([])
        naive, compiled = engines()
        web, client = pods
        matrix = compiled.reachability_matrix(policies, pods, [])
        for _ in range(2):
            for port in (80, 8080, 9090):
                expected = naive.enforcer.check_ingress(policies, client, web, port)
                assert matrix.decision(client, web, port) == expected
        # No isolating rule lists ports, so every probed port of the
        # destination resolves from one port-collapsed memo entry.
        assert len(matrix._decisions) == 1

    def test_port_constrained_sets_keep_per_port_classes(self):
        pods, policies = self._scenario([NetworkPolicyPort(port=80)])
        naive, compiled = engines()
        web, client = pods
        matrix = compiled.reachability_matrix(policies, pods, [])
        for _ in range(2):
            for port in (80, 8080, 9090):
                expected = naive.enforcer.check_ingress(policies, client, web, port)
                assert matrix.decision(client, web, port) == expected
        # A rule that lists ports keeps decisions port-keyed: one memo
        # entry per probed port survives the tier.
        assert len(matrix._decisions) == 3


def _naive_twin_decisions(cluster: Cluster, source, destination, port):
    """Evaluate one attempt on a naive twin of the cluster's current state."""
    naive = ClusterNetwork(
        enforcer=NetworkPolicyEnforcer(
            {
                namespace: cluster.enforcer.namespace_labels(namespace)
                for namespace in cluster.api.store.namespaces()
            },
            use_index=False,
        )
    )
    return naive.connect_pod_to_pod(
        cluster.network_policies(), source, destination, port
    )


class TestEpochInvalidation:
    def _cluster(self):
        from repro.cluster import BehaviorRegistry, ContainerBehavior, ListenSpec

        registry = BehaviorRegistry()
        registry.register(
            "example/web",
            ContainerBehavior(listen_on_declared=True, extra_listens=[ListenSpec(port=9999)]),
        )
        cluster = Cluster(name="epoch", worker_count=2, behaviors=registry, seed=13)
        cluster.install(
            [make_deployment(replicas=2), make_service(), make_pod("attacker")],
            app_name="web",
        )
        return cluster

    def _assert_matches_naive_twin(self, cluster):
        attacker = cluster.running_pod("attacker")
        web = cluster.running_pod("web-0")
        for port in (8080, 9999):
            assert cluster.connect(attacker, web, port) == _naive_twin_decisions(
                cluster, attacker, web, port
            )

    def test_epoch_moves_on_every_mutation_kind(self):
        cluster = self._cluster()
        epochs = [cluster.policy_epoch]
        cluster.api.apply(deny_all_policy("deny"))
        epochs.append(cluster.policy_epoch)
        cluster.api.delete("NetworkPolicy", "deny")
        epochs.append(cluster.policy_epoch)
        cluster.restart_application("web")
        epochs.append(cluster.policy_epoch)
        cluster.install([make_pod("extra")], app_name="extra")
        epochs.append(cluster.policy_epoch)
        cluster.uninstall("extra")
        epochs.append(cluster.policy_epoch)
        assert epochs == sorted(epochs) and len(set(epochs)) == len(epochs)

    def test_index_is_cached_within_an_epoch_and_rebuilt_across(self):
        cluster = self._cluster()
        first = cluster.policy_index()
        assert cluster.policy_index() is first
        cluster.api.apply(deny_all_policy("deny"))
        second = cluster.policy_index()
        assert second is not first
        assert [p.name for p in second.policies] == ["deny"]

    def test_decisions_track_policy_install_and_uninstall(self):
        cluster = self._cluster()
        attacker = cluster.running_pod("attacker")
        web = cluster.running_pod("web-0")
        assert cluster.connect(attacker, web, 8080).success
        self._assert_matches_naive_twin(cluster)

        cluster.api.apply(deny_all_policy("deny"))
        assert not cluster.connect(attacker, web, 8080).success
        self._assert_matches_naive_twin(cluster)

        cluster.api.apply(
            allow_ports_policy("allow-http", equality_selector(app="web"), [8080])
        )
        assert cluster.connect(attacker, web, 8080).success
        assert not cluster.connect(attacker, web, 9999).success
        self._assert_matches_naive_twin(cluster)

        cluster.api.delete("NetworkPolicy", "deny")
        cluster.api.delete("NetworkPolicy", "allow-http")
        assert cluster.connect(attacker, web, 9999).success
        self._assert_matches_naive_twin(cluster)

    def test_reachable_surface_tracks_restart_dynamic_ports(self):
        from repro.cluster import BehaviorRegistry, behavior_with_dynamic_ports

        registry = BehaviorRegistry()
        registry.register("example/web", behavior_with_dynamic_ports(1))
        cluster = Cluster(name="epoch-restart", worker_count=1, behaviors=registry, seed=5)
        cluster.install([make_deployment(), make_pod("attacker")], app_name="web")
        attacker = cluster.running_pod("attacker")
        before = {e.port for e in cluster.reachable_from(attacker) if e.kind == "pod"}
        cluster.restart_application("web")
        after = {e.port for e in cluster.reachable_from(attacker) if e.kind == "pod"}
        assert before != after  # dynamic port moved and the cache followed
        web = cluster.running_pod("web-0")
        assert after == {s.port for s in web.sockets if s.reachable_from_network}

    def test_running_pod_raises_dedicated_error(self):
        cluster = self._cluster()
        with pytest.raises(PodNotFound) as excinfo:
            cluster.running_pod("ghost", "nowhere")
        assert excinfo.value.name == "ghost"
        assert excinfo.value.namespace == "nowhere"


# ---------------------------------------------------------------------------
# Class-grouped all-pairs: deterministic edge cases
# ---------------------------------------------------------------------------


def _make_running(name, namespace, labels, sockets, ip):
    pod = Pod(
        metadata=ObjectMeta(name=name, namespace=namespace, labels=LabelSet(labels)),
        spec=PodSpec(
            containers=[
                Container(name="main", image="grp/app", ports=[ContainerPort(8080, name="http")])
            ]
        ),
    )
    return RunningPod(pod=pod, ip=ip, node=Node(name="grp-node"), sockets=sockets)


class TestGroupedAllPairs:
    """The grouped all-pairs path must equal per-source scans exactly.

    The deterministic scenario pins its two exact corrections: self-exclusion
    within an equivalence class, and a loopback-bound backend that is
    reachable through its service only by the backend pod itself.
    """

    def _scenario(self):
        replicas = [
            _make_running(
                f"web-{i}",
                "default",
                {"app": "web"},
                [
                    Socket(port=8080, protocol="TCP", container="main"),
                    Socket(port=6060, protocol="TCP", interface="127.0.0.1", container="main"),
                ],
                f"10.0.0.{i + 1}",
            )
            for i in range(3)
        ]
        client = _make_running("client", "default", {"role": "client"}, [], "10.0.0.9")
        # The service targets the loopback-bound debug port: only each
        # backend pod itself can reach it through the service.
        loopback_service = Service(
            metadata=ObjectMeta(name="debug", namespace="default"),
            selector=equality_selector(app="web"),
            ports=[ServicePort(port=60, target_port=6060, name="debug")],
        )
        open_service = Service(
            metadata=ObjectMeta(name="web", namespace="default"),
            selector=equality_selector(app="web"),
            ports=[ServicePort(port=80, target_port=8080, name="http")],
        )
        pods = replicas + [client]
        bindings = EndpointController().bind([loopback_service, open_service], pods)
        return pods, bindings

    def test_grouped_equals_per_source_with_loopback_service(self):
        pods, bindings = self._scenario()
        naive, compiled = engines()
        for policies in ([], [deny_all_policy("deny", namespace="default")]):
            matrix = compiled.reachability_matrix(policies, pods, bindings)
            grouped = compiled.reachability_matrix(
                policies, pods, bindings, vectorized=False
            )
            expected = {
                (source.namespace, source.name): naive.reachable_endpoints(
                    policies, source, pods, bindings
                )
                for source in pods
            }
            assert matrix.all_pairs() == expected
            assert grouped.all_pairs() == expected

    def test_loopback_service_endpoint_is_self_only(self):
        pods, bindings = self._scenario()
        _, compiled = engines()
        surfaces = compiled.reachability_matrix([], pods, bindings).all_pairs()
        for source_key, endpoints in surfaces.items():
            service_ports = {(e.name, e.port) for e in endpoints if e.kind == "service"}
            if source_key[1].startswith("web-"):
                assert service_ports == {("debug", 60), ("web", 80)}
            else:
                assert service_ports == {("web", 80)}

    def test_include_loopback_surfaces_match(self):
        pods, bindings = self._scenario()
        naive, compiled = engines()
        matrix = compiled.reachability_matrix([], pods, bindings, include_loopback=True)
        for source in pods:
            assert matrix.all_pairs()[(source.namespace, source.name)] == (
                naive.reachable_endpoints(
                    [], source, pods, bindings, include_loopback=True
                )
            )


# ---------------------------------------------------------------------------
# Bitset-vectorized all-pairs: vectorized == grouped == naive, byte-identical
# ---------------------------------------------------------------------------


def _assert_triple_identical(policies, pods, bindings, include_loopback=False):
    """Vectorized, grouped and naive surfaces must be byte-identical."""
    naive, compiled = engines()
    vector = compiled.reachability_matrix(
        policies, pods, bindings, include_loopback=include_loopback
    )
    grouped = compiled.reachability_matrix(
        policies, pods, bindings, include_loopback=include_loopback, vectorized=False
    )
    expected = {
        pod.ident: naive.reachable_endpoints(
            policies, pod, pods, bindings, include_loopback=include_loopback
        )
        for pod in pods
    }
    assert vector.all_pairs() == expected
    assert grouped.all_pairs() == expected
    return expected


class TestVectorizedAllPairs:
    """The bitmask engine against its two references, on the exact cases the
    grouped walk had to special-case: self-exclusion inside an equivalence
    class, loopback backends reachable via a service only from the backend
    itself, named ports re-resolved after a restart, matchExpressions
    selectors, and empty endpoint universes.
    """

    def _replica_scenario(self):
        replicas = [
            _make_running(
                f"web-{i}",
                "default",
                {"app": "web"},
                [
                    Socket(port=8080, protocol="TCP", container="main"),
                    Socket(port=6060, protocol="TCP", interface="127.0.0.1",
                           container="main"),
                ],
                f"10.0.0.{i + 1}",
            )
            for i in range(3)
        ]
        client = _make_running("client", "default", {"role": "client"}, [], "10.0.0.9")
        debug = Service(
            metadata=ObjectMeta(name="debug", namespace="default"),
            selector=equality_selector(app="web"),
            ports=[ServicePort(port=60, target_port=6060, name="debug")],
        )
        pods = replicas + [client]
        return pods, EndpointController().bind([debug], pods)

    def test_self_exclusion_within_equivalence_class(self):
        pods, bindings = self._replica_scenario()
        surfaces = _assert_triple_identical([], pods, bindings)
        for i in range(3):
            pod_names = {
                e.name for e in surfaces[("default", f"web-{i}")] if e.kind == "pod"
            }
            # Same class, same surface computation -- but never itself.
            assert pod_names == {f"web-{j}" for j in range(3) if j != i}

    def test_loopback_service_reachable_from_backend_only(self):
        pods, bindings = self._replica_scenario()
        for include_loopback in (False, True):
            surfaces = _assert_triple_identical(
                [], pods, bindings, include_loopback=include_loopback
            )
            for key, endpoints in surfaces.items():
                has_debug = any(e.kind == "service" and e.name == "debug"
                                for e in endpoints)
                # same_pod service delivery: only each backend reaches the
                # loopback-bound target port through the service.
                assert has_debug == key[1].startswith("web-")

    def test_named_ports_resolved_after_restart(self):
        from repro.cluster import BehaviorRegistry, behavior_with_dynamic_ports
        from repro.k8s import Deployment, PodTemplateSpec

        registry = BehaviorRegistry()
        registry.register("example/web", behavior_with_dynamic_ports(1))
        cluster = Cluster(name="vec-restart", worker_count=1, behaviors=registry, seed=11)
        labels = {"app": "web"}
        deployment = Deployment(
            metadata=ObjectMeta(name="web", namespace="default", labels=LabelSet(labels)),
            replicas=2,
            selector=equality_selector(**labels),
            template=PodTemplateSpec(
                metadata=ObjectMeta(name="web", namespace="default",
                                    labels=LabelSet(labels)),
                spec=PodSpec(
                    containers=[
                        Container(
                            name="web",
                            image="example/web",
                            ports=[ContainerPort(8080, name="http")],
                        )
                    ]
                ),
            ),
        )
        cluster.install(
            [deployment, make_service(target_port="http"), make_pod("attacker")],
            app_name="web",
        )
        named_port_policy = NetworkPolicy(
            metadata=ObjectMeta(name="allow-http-by-name", namespace="default"),
            pod_selector=equality_selector(app="web"),
            policy_types=["Ingress"],
            ingress=[NetworkPolicyRule(
                peers=[], ports=[NetworkPolicyPort(port="http")]
            )],
        )
        cluster.api.apply(named_port_policy)

        def triple_check():
            pods = cluster.running_pods()
            policies = cluster.network_policies()
            bindings = cluster.service_bindings()
            naive = ClusterNetwork(
                enforcer=NetworkPolicyEnforcer(
                    {
                        namespace: cluster.enforcer.namespace_labels(namespace)
                        for namespace in cluster.api.store.namespaces()
                    },
                    use_index=False,
                )
            )
            compiled = ClusterNetwork(enforcer=NetworkPolicyEnforcer(
                {
                    namespace: cluster.enforcer.namespace_labels(namespace)
                    for namespace in cluster.api.store.namespaces()
                }
            ))
            vector = compiled.reachability_matrix(policies, pods, bindings)
            grouped = compiled.reachability_matrix(
                policies, pods, bindings, vectorized=False
            )
            expected = {
                pod.ident: naive.reachable_endpoints(policies, pod, pods, bindings)
                for pod in pods
            }
            assert vector.all_pairs() == expected
            assert grouped.all_pairs() == expected
            return expected

        before = triple_check()
        sockets_before = {
            (p.name, s.port) for p in cluster.running_pods() for s in p.sockets
        }
        cluster.restart_application("web")
        after = triple_check()
        sockets_after = {
            (p.name, s.port) for p in cluster.running_pods() for s in p.sockets
        }
        # The restart moved the dynamic sockets, yet the named-port policy
        # keeps only "http" reachable: the surfaces stay put and all three
        # paths re-resolved the name against the fresh sockets identically.
        assert sockets_before != sockets_after
        assert before == after

    def test_match_expressions_selectors(self):
        pods = [
            _make_running("web-0", "default", {"app": "web", "tier": "frontend"},
                          [Socket(port=8080, protocol="TCP", container="main")],
                          "10.0.0.1"),
            _make_running("db-0", "default", {"app": "db"},
                          [Socket(port=9090, protocol="TCP", container="main")],
                          "10.0.0.2"),
            _make_running("cache-0", "prod", {"app": "cache", "tier": "backend"},
                          [Socket(port=80, protocol="TCP", container="main")],
                          "10.0.0.3"),
        ]
        expression_policies = [
            NetworkPolicy(
                metadata=ObjectMeta(name=f"expr-{op.lower()}", namespace=namespace),
                pod_selector=Selector(match_expressions=(
                    LabelSelectorRequirement(
                        key="app",
                        operator=op,
                        values=("web", "cache") if op in ("In", "NotIn") else (),
                    ),
                )),
                policy_types=["Ingress"],
                ingress=[NetworkPolicyRule(
                    peers=[NetworkPolicyPeer(pod_selector=Selector(match_expressions=(
                        LabelSelectorRequirement(key="tier", operator="Exists"),
                    )))],
                    ports=[],
                )],
            )
            for op, namespace in (
                ("In", "default"), ("NotIn", "default"),
                ("Exists", "prod"), ("DoesNotExist", "prod"),
            )
        ]
        for policies in ([expression_policies[0]], expression_policies[:2],
                         expression_policies):
            _assert_triple_identical(policies, pods, [])

    def test_empty_universe_fleets(self):
        # No pods at all; pods with no sockets; loopback-only sockets hidden
        # by include_loopback=False: every variant must agree on all paths.
        silent = [
            _make_running("mute-0", "default", {"app": "mute"}, [], "10.0.0.1"),
            _make_running("mute-1", "prod", {"app": "mute"}, [], "10.0.0.2"),
        ]
        loopback_only = [
            _make_running(
                "shy-0", "default", {"app": "shy"},
                [Socket(port=6060, protocol="TCP", interface="127.0.0.1",
                        container="main")],
                "10.0.0.3",
            )
        ]
        assert _assert_triple_identical([], [], []) == {}
        surfaces = _assert_triple_identical([], silent, [])
        assert all(endpoints == [] for endpoints in surfaces.values())
        surfaces = _assert_triple_identical(
            [deny_all_policy("deny", namespace="default")], silent + loopback_only, []
        )
        assert all(endpoints == [] for endpoints in surfaces.values())
        # With loopback included the universe is non-empty again.
        surfaces = _assert_triple_identical([], loopback_only, [],
                                            include_loopback=True)
        assert surfaces[("default", "shy-0")] == []


# ---------------------------------------------------------------------------
# Endpoint-controller epoch: bindings re-reconcile only when state moved
# ---------------------------------------------------------------------------


class TestServiceBindingEpoch:
    def _cluster(self):
        cluster = Cluster(name="bindings", worker_count=1, seed=7)
        cluster.install(
            [make_deployment(replicas=2), make_service(), make_pod("attacker")],
            app_name="web",
        )
        return cluster

    def test_bindings_cached_within_epoch(self):
        cluster = self._cluster()
        first = cluster.service_bindings()
        assert cluster.service_bindings()[0] is first[0]  # no re-reconcile

    def test_bindings_follow_service_and_pod_mutations(self):
        cluster = self._cluster()
        assert {b.service.name for b in cluster.service_bindings()} == {"web"}
        cluster.api.apply(
            Service(
                metadata=ObjectMeta(name="late", namespace="default"),
                selector=equality_selector(app="web"),
                ports=[ServicePort(port=81, target_port=8080, name="http")],
            )
        )
        assert {b.service.name for b in cluster.service_bindings()} == {"web", "late"}
        before = {backend.name for b in cluster.service_bindings() for backend in b.backends}
        cluster.uninstall("web")
        after = {backend.name for b in cluster.service_bindings() for backend in b.backends}
        assert before and not after

    def test_bindings_follow_restart(self):
        cluster = self._cluster()
        first = cluster.service_bindings()
        cluster.restart_application("web")
        second = cluster.service_bindings()
        assert second[0] is not first[0]
