"""Property tests for ``Chart.fingerprint()`` -- the render cache's key.

The rendered-chart cache keys on the fingerprint, so its correctness
contract is exactly two-sided:

* **stability** -- charts whose values files are YAML-equivalent (different
  key order, flow vs block style, whitespace, comments) must fingerprint
  identically, otherwise equal charts miss each other's cache entries;
* **sensitivity** -- any change to a template (name or source), a canonical
  value, metadata or a packaged subchart must change the fingerprint,
  otherwise the cache would serve renders of a different chart.
"""

from __future__ import annotations

import yaml
from hypothesis import given, settings, strategies as st

from repro.helm import Chart

TEMPLATE = """\
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-svc
spec:
  ports:
    - port: {{ .Values.port | default 80 }}
"""

scalars = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.booleans(),
    st.text(alphabet="abcdefXYZ -_09", max_size=12),
)

keys = st.text(alphabet="abcdefghij", min_size=1, max_size=8)

values_trees = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(keys, children, max_size=4),
    ),
    max_leaves=12,
)

values_dicts = st.dictionaries(keys, values_trees, max_size=5)


def chart_with(values_yaml: str, template: str = TEMPLATE, name: str = "prop") -> Chart:
    return Chart.from_files(
        name, values_yaml=values_yaml, templates={"svc.yaml": template}
    )


def reordered(tree):
    """The same tree with every mapping's key order reversed."""
    if isinstance(tree, dict):
        return {key: reordered(tree[key]) for key in reversed(list(tree))}
    if isinstance(tree, list):
        return [reordered(item) for item in tree]
    return tree


@settings(max_examples=60, deadline=None)
@given(tree=values_dicts)
def test_fingerprint_stable_across_equivalent_values_files(tree):
    """Key order, flow style and surrounding comments must not matter."""
    block = yaml.safe_dump(tree, sort_keys=True, default_flow_style=False)
    flow = yaml.safe_dump(reordered(tree), sort_keys=False, default_flow_style=True)
    commented = "# a leading comment\n" + block + "\n# a trailing comment\n"
    fingerprints = {
        chart_with(block).fingerprint(),
        chart_with(flow).fingerprint(),
        chart_with(commented).fingerprint(),
    }
    assert len(fingerprints) == 1


@settings(max_examples=60, deadline=None)
@given(tree=values_dicts, marker=st.integers(min_value=0, max_value=10**6))
def test_fingerprint_changes_with_any_canonical_value_change(tree, marker):
    base_yaml = yaml.safe_dump(tree, sort_keys=True)
    base = chart_with(base_yaml).fingerprint()
    mutated = dict(tree)
    mutated["__fingerprint_probe__"] = marker
    changed = chart_with(yaml.safe_dump(mutated, sort_keys=True)).fingerprint()
    assert base != changed


@settings(max_examples=40, deadline=None)
@given(tree=values_dicts, suffix=st.text(alphabet="abc# ", min_size=1, max_size=10))
def test_fingerprint_changes_with_template_source_or_name(tree, suffix):
    values_yaml = yaml.safe_dump(tree, sort_keys=True)
    base = chart_with(values_yaml).fingerprint()
    # Any template source change -- even inside a comment -- is a new chart.
    touched_source = chart_with(values_yaml, template=TEMPLATE + "# " + suffix + "\n")
    assert touched_source.fingerprint() != base
    renamed = Chart.from_files(
        "prop", values_yaml=values_yaml, templates={"renamed.yaml": TEMPLATE}
    )
    assert renamed.fingerprint() != base


def test_fingerprint_covers_metadata_and_subcharts():
    base = chart_with("port: 80\n")
    assert base.fingerprint() == chart_with("port: 80\n").fingerprint()
    versioned = chart_with("port: 80\n")
    versioned.metadata.version = "9.9.9"
    assert versioned.fingerprint() != base.fingerprint()

    with_sub = chart_with("port: 80\n")
    subchart = Chart.from_files("sub", values_yaml="x: 1\n", templates={})
    with_sub.add_subchart(subchart)
    assert with_sub.fingerprint() != base.fingerprint()

    # Mutating the packaged subchart's values propagates to the parent.
    fingerprint_before = with_sub.fingerprint()
    subchart.values["x"] = 2
    assert with_sub.fingerprint() != fingerprint_before
