"""Unit tests for the chart model and the chart renderer."""

import pytest

from repro.helm import (
    Chart,
    ChartError,
    ChartRepository,
    HelmRenderer,
    ReleaseInfo,
    RenderError,
    render_chart,
)
from repro.k8s import Deployment, Service


class TestChart:
    def test_from_files_parses_values(self):
        chart = Chart.from_files("demo", values_yaml="a: 1\n", templates={"cm.yaml": "kind: X"})
        assert chart.values == {"a": 1}
        assert chart.template_named("cm.yaml") is not None

    def test_effective_values_merges_overrides(self):
        chart = Chart.from_files("demo", values_yaml="service:\n  port: 80\n")
        values = chart.effective_values({"service": {"port": 8080}})
        assert values == {"service": {"port": 8080}}

    def test_helper_templates_are_detected(self):
        chart = Chart.from_files("demo", templates={"_helpers.tpl": "", "app.yaml": ""})
        helpers = [template.name for template in chart.templates if template.is_helper]
        assert helpers == ["_helpers.tpl"]

    def test_validate_rejects_duplicate_template_names(self):
        chart = Chart.from_files("demo", templates={"a.yaml": "x"})
        chart.add_template("a.yaml", "y")
        with pytest.raises(ChartError):
            chart.validate()

    def test_validate_rejects_missing_name(self):
        chart = Chart.from_files("demo")
        chart.metadata.name = ""
        with pytest.raises(ChartError):
            chart.validate()

    def test_add_subchart_registers_dependency(self):
        parent = Chart.from_files("parent")
        child = Chart.from_files("child")
        parent.add_subchart(child, condition="child.enabled")
        parent.validate()
        assert parent.dependencies[0].name == "child"

    def test_validate_rejects_dependency_without_subchart(self):
        from repro.helm.chart import ChartDependency

        chart = Chart.from_files("demo")
        chart.dependencies.append(ChartDependency(name="ghost"))
        with pytest.raises(ChartError):
            chart.validate()


class TestChartRepository:
    def test_publish_and_get(self):
        repo = ChartRepository()
        repo.publish(Chart.from_files("web"), organization="acme")
        assert repo.get("web", "acme").name == "web"
        assert repo.organizations() == ["acme"]

    def test_get_unknown_chart_raises(self):
        with pytest.raises(ChartError):
            ChartRepository().get("missing")

    def test_charts_filtered_by_organization(self):
        repo = ChartRepository()
        repo.publish(Chart.from_files("a"), organization="one")
        repo.publish(Chart.from_files("b"), organization="two")
        assert [chart.name for chart in repo.charts("one")] == ["a"]
        assert len(repo) == 2


class TestRenderer:
    def test_render_simple_chart(self, simple_chart):
        rendered = render_chart(simple_chart, release_name="rel")
        kinds = sorted(obj.kind for obj in rendered.objects)
        assert kinds == ["Deployment", "Service"]
        deployment = rendered.objects_of_kind("Deployment")[0]
        assert isinstance(deployment, Deployment)
        assert deployment.name == "rel-web"

    def test_overrides_change_rendered_values(self, simple_chart):
        rendered = render_chart(simple_chart, overrides={"replicas": 5})
        deployment = rendered.objects_of_kind("Deployment")[0]
        assert deployment.replica_count() == 5

    def test_release_namespace_is_used(self, simple_chart):
        rendered = render_chart(simple_chart, namespace="prod")
        assert rendered.release.namespace == "prod"

    def test_conditional_template_can_disable_resources(self):
        chart = Chart.from_files(
            "demo",
            values_yaml="service:\n  enabled: false\n",
            templates={
                "svc.yaml": (
                    "{{- if .Values.service.enabled }}\n"
                    "apiVersion: v1\nkind: Service\nmetadata:\n  name: s\n"
                    "spec:\n  ports:\n    - port: 80\n{{- end }}\n"
                )
            },
        )
        assert render_chart(chart).objects == []
        enabled = render_chart(chart, overrides={"service": {"enabled": True}})
        assert isinstance(enabled.objects[0], Service)

    def test_invalid_yaml_output_raises_render_error(self):
        chart = Chart.from_files("demo", templates={"bad.yaml": "kind: [unclosed"})
        with pytest.raises(RenderError):
            render_chart(chart)

    def test_template_error_is_wrapped_with_chart_context(self):
        chart = Chart.from_files("demo", templates={"bad.yaml": "{{ unknownFunc }}"})
        with pytest.raises(RenderError, match="demo/bad.yaml"):
            render_chart(chart)

    def test_subchart_rendering_with_condition(self):
        child = Chart.from_files(
            "child",
            values_yaml="port: 9090\n",
            templates={
                "svc.yaml": (
                    "apiVersion: v1\nkind: Service\nmetadata:\n  name: child\n"
                    "spec:\n  ports:\n    - port: {{ .Values.port }}\n"
                )
            },
        )
        parent = Chart.from_files("parent", values_yaml="child:\n  enabled: true\n  port: 1234\n")
        parent.add_subchart(child, condition="child.enabled")
        rendered = render_chart(parent)
        service = rendered.objects_of_kind("Service")[0]
        assert service.port_numbers() == {1234}
        disabled = render_chart(parent, overrides={"child": {"enabled": False}})
        assert disabled.objects == []

    def test_global_values_propagate_to_subchart(self):
        child = Chart.from_files(
            "child",
            templates={
                "cm.yaml": (
                    "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: child\n"
                    "data:\n  region: {{ .Values.global.region }}\n"
                )
            },
        )
        parent = Chart.from_files("parent", values_yaml="global:\n  region: eu-north\n")
        parent.add_subchart(child)
        rendered = render_chart(parent)
        configmap = rendered.objects_of_kind("ConfigMap")[0]
        assert configmap.data["region"] == "eu-north"

    def test_sources_are_recorded_per_template(self, simple_chart):
        rendered = HelmRenderer().render(simple_chart, ReleaseInfo(name="rel"))
        assert any(name.endswith("deployment.yaml") for name in rendered.sources)

    def test_inventory_view(self, rendered_simple_chart):
        inventory = rendered_simple_chart.inventory()
        assert len(inventory.compute_units()) == 1
        assert len(inventory.services()) == 1
