"""Unit tests for the Go-template subset engine."""

import pytest

from repro.helm import TemplateEngine, TemplateError, tokenize_expression


@pytest.fixture
def engine() -> TemplateEngine:
    return TemplateEngine()


def render(engine: TemplateEngine, source: str, **context) -> str:
    return engine.render(source, context)


class TestTokenizer:
    def test_dotted_path(self):
        assert tokenize_expression(".Values.service.port") == [".Values.service.port"]

    def test_pipeline_tokens(self):
        assert tokenize_expression('.Values.tag | default "latest" | quote') == [
            ".Values.tag", "|", "default", '"latest"', "|", "quote",
        ]

    def test_variable_with_path(self):
        assert tokenize_expression("$comp.ports") == ["$comp.ports"]

    def test_root_relative_path(self):
        assert tokenize_expression("$.Release.Name") == ["$.Release.Name"]

    def test_parentheses(self):
        tokens = tokenize_expression('(eq .Values.mode "dev")')
        assert tokens[0] == "(" and tokens[-1] == ")"

    def test_unknown_characters_raise(self):
        with pytest.raises(TemplateError):
            tokenize_expression(".Values.a @ b")


class TestBasicSubstitution:
    def test_plain_text_is_untouched(self, engine):
        assert render(engine, "hello world") == "hello world"

    def test_value_lookup(self, engine):
        assert render(engine, "{{ .Values.name }}", Values={"name": "web"}) == "web"

    def test_missing_value_renders_empty(self, engine):
        assert render(engine, "[{{ .Values.missing }}]", Values={}) == "[]"

    def test_integer_rendering(self, engine):
        assert render(engine, "{{ .Values.port }}", Values={"port": 8080}) == "8080"

    def test_boolean_rendering(self, engine):
        assert render(engine, "{{ .Values.on }}", Values={"on": True}) == "true"

    def test_release_and_chart_context(self, engine):
        output = render(
            engine, "{{ .Release.Name }}-{{ .Chart.Name }}",
            Release={"Name": "rel"}, Chart={"Name": "app"},
        )
        assert output == "rel-app"

    def test_whitespace_trimming(self, engine):
        source = "a\n  {{- .Values.x }}\n"
        assert render(engine, source, Values={"x": "b"}) == "ab\n"

    def test_comment_action_is_skipped(self, engine):
        assert render(engine, "a{{ /* comment */ }}b") == "ab"


class TestFunctions:
    def test_default_used_when_value_missing(self, engine):
        assert render(engine, '{{ .Values.tag | default "latest" }}', Values={}) == "latest"

    def test_default_ignored_when_value_present(self, engine):
        assert render(engine, '{{ .Values.tag | default "latest" }}', Values={"tag": "1.2"}) == "1.2"

    def test_quote(self, engine):
        assert render(engine, "{{ .Values.image | quote }}", Values={"image": "nginx"}) == '"nginx"'

    def test_upper_lower(self, engine):
        assert render(engine, "{{ upper .Values.x }}{{ lower .Values.y }}",
                      Values={"x": "ab", "y": "CD"}) == "ABcd"

    def test_printf(self, engine):
        assert render(engine, '{{ printf "%s-%s" .Values.a .Values.b }}',
                      Values={"a": "x", "b": "y"}) == "x-y"

    def test_trunc_and_trim_suffix(self, engine):
        output = render(engine, '{{ .Values.name | trunc 6 | trimSuffix "-" }}',
                        Values={"name": "myapp--extra"})
        assert output == "myapp"

    def test_nindent_indents_on_new_line(self, engine):
        output = render(engine, "labels:{{ .Values.labels | toYaml | nindent 2 }}",
                        Values={"labels": {"app": "web"}})
        assert output == "labels:\n  app: web"

    def test_ternary(self, engine):
        assert render(engine, '{{ ternary "on" "off" .Values.flag }}', Values={"flag": True}) == "on"

    def test_required_raises_when_missing(self, engine):
        with pytest.raises(TemplateError):
            render(engine, '{{ required "name is required" .Values.name }}', Values={})

    def test_arithmetic(self, engine):
        assert render(engine, "{{ add .Values.a 5 }}", Values={"a": 2}) == "7"
        assert render(engine, "{{ sub 10 .Values.a }}", Values={"a": 2}) == "8"

    def test_comparison_and_boolean(self, engine):
        assert render(engine, '{{ if eq .Values.env "prod" }}yes{{ end }}',
                      Values={"env": "prod"}) == "yes"
        assert render(engine, "{{ if and .Values.a .Values.b }}both{{ end }}",
                      Values={"a": True, "b": True}) == "both"
        assert render(engine, "{{ if or .Values.a .Values.b }}one{{ end }}",
                      Values={"a": False, "b": True}) == "one"
        assert render(engine, "{{ if not .Values.a }}negated{{ end }}",
                      Values={"a": False}) == "negated"

    def test_nested_parentheses(self, engine):
        output = render(engine, '{{ if (eq (add 1 1) 2) }}math{{ end }}', Values={})
        assert output == "math"

    def test_unknown_function_raises(self, engine):
        with pytest.raises(TemplateError):
            render(engine, "{{ frobnicate .Values }}", Values={})


class TestControlStructures:
    def test_if_else(self, engine):
        source = "{{ if .Values.enabled }}on{{ else }}off{{ end }}"
        assert render(engine, source, Values={"enabled": True}) == "on"
        assert render(engine, source, Values={"enabled": False}) == "off"

    def test_else_if_chain(self, engine):
        source = '{{ if eq .Values.x 1 }}one{{ else if eq .Values.x 2 }}two{{ else }}many{{ end }}'
        assert render(engine, source, Values={"x": 1}) == "one"
        assert render(engine, source, Values={"x": 2}) == "two"
        assert render(engine, source, Values={"x": 3}) == "many"

    def test_if_empty_list_is_false(self, engine):
        assert render(engine, "{{ if .Values.items }}yes{{ else }}no{{ end }}",
                      Values={"items": []}) == "no"

    def test_missing_end_raises(self, engine):
        with pytest.raises(TemplateError):
            render(engine, "{{ if .Values.x }}unclosed", Values={})

    def test_range_over_list(self, engine):
        source = "{{ range .Values.ports }}[{{ . }}]{{ end }}"
        assert render(engine, source, Values={"ports": [80, 443]}) == "[80][443]"

    def test_range_over_dict_with_variables(self, engine):
        source = "{{ range $key, $value := .Values.labels }}{{ $key }}={{ $value }};{{ end }}"
        output = render(engine, source, Values={"labels": {"a": "1", "b": "2"}})
        assert output == "a=1;b=2;"

    def test_range_else_branch(self, engine):
        source = "{{ range .Values.items }}x{{ else }}empty{{ end }}"
        assert render(engine, source, Values={"items": []}) == "empty"

    def test_range_over_scalar_raises(self, engine):
        with pytest.raises(TemplateError):
            render(engine, "{{ range .Values.x }}y{{ end }}", Values={"x": 5})

    def test_with_changes_dot(self, engine):
        source = "{{ with .Values.service }}{{ .port }}{{ end }}"
        assert render(engine, source, Values={"service": {"port": 80}}) == "80"

    def test_with_else_when_falsy(self, engine):
        source = "{{ with .Values.service }}{{ .port }}{{ else }}none{{ end }}"
        assert render(engine, source, Values={}) == "none"

    def test_root_access_inside_range(self, engine):
        source = "{{ range .Values.items }}{{ $.Release.Name }}-{{ . }} {{ end }}"
        output = render(engine, source, Values={"items": ["a", "b"]}, Release={"Name": "rel"})
        assert output == "rel-a rel-b "

    def test_variable_assignment(self, engine):
        source = '{{ $name := .Values.name }}{{ $name }}!'
        assert render(engine, source, Values={"name": "web"}) == "web!"

    def test_variable_with_path_access(self, engine):
        source = "{{ $svc := .Values.service }}{{ $svc.port }}"
        assert render(engine, source, Values={"service": {"port": 8080}}) == "8080"


class TestDefinesAndInclude:
    def test_define_and_include(self, engine):
        source = (
            '{{- define "app.labels" -}}app: {{ .Chart.Name }}{{- end -}}'
            '{{ include "app.labels" . }}'
        )
        assert render(engine, source, Chart={"Name": "demo"}) == "app: demo"

    def test_include_with_nindent(self, engine):
        source = (
            '{{- define "lbl" -}}a: 1\nb: 2{{- end -}}'
            'labels:{{ include "lbl" . | nindent 2 }}'
        )
        assert render(engine, source) == "labels:\n  a: 1\n  b: 2"

    def test_include_unknown_template_raises(self, engine):
        with pytest.raises(TemplateError):
            render(engine, '{{ include "missing" . }}')

    def test_template_keyword_behaves_like_include(self, engine):
        source = '{{- define "x" -}}X{{- end -}}{{ template "x" . }}'
        assert render(engine, source) == "X"

    def test_defines_registered_from_helper_source(self, engine):
        engine.register_source('{{- define "helper.name" -}}helper{{- end -}}', "_helpers.tpl")
        assert render(engine, '{{ include "helper.name" . }}') == "helper"
