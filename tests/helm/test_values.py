"""Unit tests for values merging, paths and --set parsing."""

import pytest

from repro.helm import (
    ValuesError,
    apply_set_strings,
    deep_merge,
    dump_values,
    get_path,
    load_values,
    parse_set_string,
    set_path,
)


class TestDeepMerge:
    def test_nested_mappings_are_merged(self):
        base = {"service": {"port": 80, "type": "ClusterIP"}}
        override = {"service": {"port": 8080}}
        merged = deep_merge(base, override)
        assert merged == {"service": {"port": 8080, "type": "ClusterIP"}}

    def test_lists_are_replaced_not_merged(self):
        merged = deep_merge({"ports": [80, 443]}, {"ports": [8080]})
        assert merged["ports"] == [8080]

    def test_merge_does_not_mutate_inputs(self):
        base = {"a": {"b": 1}}
        deep_merge(base, {"a": {"c": 2}})
        assert base == {"a": {"b": 1}}

    def test_scalar_replaces_mapping(self):
        assert deep_merge({"a": {"b": 1}}, {"a": 5}) == {"a": 5}

    def test_new_keys_are_added(self):
        assert deep_merge({"a": 1}, {"b": 2}) == {"a": 1, "b": 2}


class TestPaths:
    def test_get_path_nested(self):
        values = {"primary": {"service": {"ports": {"mysql": 3306}}}}
        assert get_path(values, "primary.service.ports.mysql") == 3306

    def test_get_path_missing_returns_default(self):
        assert get_path({}, "a.b.c", default="x") == "x"

    def test_get_path_empty_returns_whole_mapping(self):
        values = {"a": 1}
        assert get_path(values, "") == values

    def test_set_path_creates_intermediate_dicts(self):
        values = {}
        set_path(values, "networkPolicy.enabled", True)
        assert values == {"networkPolicy": {"enabled": True}}

    def test_set_path_overwrites_scalar_intermediate(self):
        values = {"a": 5}
        set_path(values, "a.b", 1)
        assert values == {"a": {"b": 1}}

    def test_set_path_empty_raises(self):
        with pytest.raises(ValuesError):
            set_path({}, "", 1)


class TestSetStrings:
    @pytest.mark.parametrize(
        "assignment,expected",
        [
            ("replicas=3", ("replicas", 3)),
            ("image.tag=latest", ("image.tag", "latest")),
            ("networkPolicy.enabled=true", ("networkPolicy.enabled", True)),
            ("debug=false", ("debug", False)),
            ("value=null", ("value", None)),
            ("ratio=0.5", ("ratio", 0.5)),
        ],
    )
    def test_parse_set_string(self, assignment, expected):
        assert parse_set_string(assignment) == expected

    def test_parse_set_string_without_equals_raises(self):
        with pytest.raises(ValuesError):
            parse_set_string("novalue")

    def test_apply_set_strings(self):
        values = apply_set_strings({"service": {"port": 80}}, ["service.port=8080", "extra=1"])
        assert values == {"service": {"port": 8080}, "extra": 1}


class TestLoadDump:
    def test_load_values_parses_yaml(self):
        assert load_values("a:\n  b: 1\n") == {"a": {"b": 1}}

    def test_load_values_empty_document(self):
        assert load_values("") == {}

    def test_load_values_non_mapping_raises(self):
        with pytest.raises(ValuesError):
            load_values("- item\n")

    def test_load_values_invalid_yaml_raises(self):
        with pytest.raises(ValuesError):
            load_values("a: [unclosed")

    def test_dump_values_round_trip(self):
        values = {"b": 2, "a": {"nested": True}}
        assert load_values(dump_values(values)) == values
