"""Differential suite: structured render == text render, always.

The dict-native render path (``render_chart(structured=True)``, the
default) must be a *pure acceleration* of the classic text pipeline:
identical documents, identical typed objects, identical downstream reports,
snapshots and reachability surfaces.  This suite proves it four ways:

* over the **whole 290-chart catalogue** -- documents/objects per chart,
  with and without the Figure 4b policy overrides;
* through the **analysis pipeline** -- canonical reports, double snapshots
  and all-pairs reachability surfaces computed from structured renders diff
  clean against the text-rendered reference;
* over **Hypothesis-generated app specs** -- arbitrary injection plans and
  archetypes;
* over **adversarial templates** -- multi-document sources, ``toYaml``
  nested in text context, empty and non-mapping documents, placeholder
  collisions, scalar-resolution corner cases: everything designed to force
  the splicer, the fast subset parser, or their fallbacks off the happy
  path.

Comparisons of pipeline artefacts go through the shared canonical differ in
``tests/support/diffing.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import AnalysisSession, Cluster, OBSERVE_FAST
from repro.core import AnalyzerSettings, MisconfigurationAnalyzer
from repro.datasets import InjectionPlan, build_application, build_catalog
from repro.helm import Chart, TemplateEngine, render_chart
from repro.helm.structured import PLACEHOLDER_PREFIX, assemble_documents, parse_simple_yaml
from repro.k8s.errors import ParseError
from repro.k8s.yamlio import yaml_load_all

from tests.support.diffing import (
    assert_identical,
    canonical_observation,
    canonical_report,
    canonical_surface,
)

ARCHETYPES = ("web", "database", "monitoring", "messaging", "pipeline", "microservices")


def assert_render_equivalent(chart, overrides=None, release_name=None):
    """Both render paths must produce dict-identical output for ``chart``."""
    text = render_chart(
        chart, release_name=release_name, overrides=overrides, cached=False, structured=False
    )
    structured = render_chart(
        chart, release_name=release_name, overrides=overrides, cached=False, structured=True
    )
    assert structured.documents == text.documents
    assert structured.objects == text.objects
    assert structured.values == text.values
    assert structured.release == text.release
    assert set(structured.sources) == set(text.sources)
    return structured


def template_documents(source: str, context: dict, structured: bool) -> list:
    """Render one template source to documents via either path."""
    engine = TemplateEngine()
    if structured:
        fragments = engine.render_fragments(source, dict(context), "test.yaml")
        documents, _ = assemble_documents(fragments, "test.yaml")
        return documents
    rendered = engine.render(source, dict(context), "test.yaml")
    if not rendered.strip():
        return []
    return [document for document in yaml_load_all(rendered) if document]


def assert_template_equivalent(source: str, context: dict) -> list:
    """Both paths must produce identical documents for one template."""
    text_docs = template_documents(source, context, structured=False)
    structured_docs = template_documents(source, context, structured=True)
    assert structured_docs == text_docs
    return structured_docs


# ---------------------------------------------------------------------------
# Whole-catalogue conformance
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def catalog_apps():
    return build_catalog()


@pytest.mark.slow
def test_catalogue_structured_equals_text(catalog_apps):
    """Dict-identical documents/objects for every chart of the catalogue."""
    for app in catalog_apps:
        assert_render_equivalent(app.chart)


@pytest.mark.slow
def test_catalogue_structured_equals_text_with_policy_overrides(catalog_apps):
    """The Figure 4b force-enable override renders identically too."""
    overrides = {"networkPolicy": {"enabled": True}}
    for app in catalog_apps:
        if app.defines_network_policies:
            assert_render_equivalent(app.chart, overrides=overrides)


@pytest.mark.slow
def test_catalogue_reports_identical_from_structured_renders(catalog_apps):
    """Analyzer reports from structured renders == reports from text renders."""
    analyzer = MisconfigurationAnalyzer(settings=AnalyzerSettings())
    for app in catalog_apps:
        expected = canonical_report(
            analyzer.analyze_chart(
                app.chart,
                behaviors=app.behaviors,
                dataset=app.dataset,
                rendered=render_chart(app.chart, cached=False, structured=False),
            )
        )
        actual = canonical_report(
            analyzer.analyze_chart(
                app.chart,
                behaviors=app.behaviors,
                dataset=app.dataset,
                rendered=render_chart(app.chart, cached=False, structured=True),
            )
        )
        assert_identical(expected, actual, label=f"report/{app.dataset}/{app.name}")


@pytest.mark.slow
def test_catalogue_snapshots_identical_from_structured_renders(catalog_apps):
    """Install-free double snapshots taken from structured renders diff clean."""
    session = AnalysisSession(observe_mode=OBSERVE_FAST)
    for app in catalog_apps:
        reference = canonical_observation(
            session.observe(render_chart(app.chart, cached=False, structured=False),
                            app.behaviors)
        )
        actual = canonical_observation(
            session.observe(render_chart(app.chart, cached=False, structured=True),
                            app.behaviors)
        )
        assert_identical(reference, actual, label=f"snapshot/{app.dataset}/{app.name}")


@pytest.mark.slow
def test_reachability_surfaces_identical_from_structured_renders(catalog_apps):
    """All-pairs surfaces of installed structured renders match the text path."""
    overrides = {"networkPolicy": {"enabled": True}}
    checked = 0
    for app in catalog_apps:
        if not app.defines_network_policies:
            continue
        text_cluster = Cluster(name="surface", behaviors=app.behaviors)
        text_cluster.install(
            render_chart(app.chart, overrides=overrides, cached=False, structured=False)
        )
        expected = canonical_surface(text_cluster.reachability_matrix().all_pairs())
        structured_cluster = Cluster(name="surface", behaviors=app.behaviors)
        structured_cluster.install(
            render_chart(app.chart, overrides=overrides, cached=False, structured=True)
        )
        actual = canonical_surface(structured_cluster.reachability_matrix().all_pairs())
        assert_identical(expected, actual, label=f"surface/{app.dataset}/{app.name}")
        checked += 1
        if checked >= 60:  # plenty of coverage; installs dominate otherwise
            break
    assert checked >= 50


@pytest.mark.slow
def test_vectorized_surfaces_equal_grouped_over_catalogue(catalog_apps):
    """Bitset-vectorized all-pairs == the grouped reference, byte-identical,
    over the catalogue's policy-bearing charts (both loopback modes)."""
    overrides = {"networkPolicy": {"enabled": True}}
    checked = 0
    for app in catalog_apps:
        if not app.defines_network_policies:
            continue
        cluster = Cluster(name="vec", behaviors=app.behaviors)
        cluster.install(render_chart(app.chart, overrides=overrides, cached=False))
        for include_loopback in (False, True):
            grouped = cluster.reachability_matrix(
                include_loopback=include_loopback, vectorized=False
            ).all_pairs()
            vector = cluster.reachability_matrix(
                include_loopback=include_loopback
            ).all_pairs()
            assert vector == grouped, f"{app.dataset}/{app.name}"
        checked += 1
        if checked >= 60:
            break
    assert checked >= 50


# ---------------------------------------------------------------------------
# Hypothesis-generated app specs
# ---------------------------------------------------------------------------


@st.composite
def injection_plans(draw):
    m1 = draw(st.integers(min_value=0, max_value=3))
    return InjectionPlan(
        m1=m1,
        m2=draw(st.integers(min_value=0, max_value=2)),
        m3=draw(st.integers(min_value=0, max_value=2)),
        m4a=draw(st.integers(min_value=0, max_value=1)),
        m4b=draw(st.integers(min_value=0, max_value=1)),
        m4c=draw(st.integers(min_value=0, max_value=1)),
        m5a=draw(st.integers(min_value=0, max_value=1)),
        m5b=draw(st.integers(min_value=0, max_value=m1)),
        m5c=draw(st.integers(min_value=0, max_value=1)),
        m5d=draw(st.integers(min_value=0, max_value=1)),
        m6=draw(st.booleans()),
        m7=draw(st.integers(min_value=0, max_value=1)),
        global_collision=draw(st.booleans()),
    )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(plan=injection_plans(), archetype=st.sampled_from(ARCHETYPES))
def test_generated_specs_render_identically(plan, archetype):
    app = build_application("gen-app", "Gen Org", plan, archetype=archetype)
    assert_render_equivalent(app.chart)


# ---------------------------------------------------------------------------
# Adversarial templates
# ---------------------------------------------------------------------------


class TestMultiDocumentSources:
    def test_static_separators(self):
        source = (
            "kind: A\nname: first\n---\nkind: B\nname: second\n---\nkind: C\nname: third\n"
        )
        docs = assert_template_equivalent(source, {})
        assert [d["kind"] for d in docs] == ["A", "B", "C"]

    def test_separators_inside_range(self):
        source = (
            "{{- range .Values.items }}\n---\nkind: Item\nvalue: {{ . }}\n{{- end }}\n"
        )
        docs = assert_template_equivalent(source, {"Values": {"items": [1, 2, 3]}})
        assert [d["value"] for d in docs] == [1, 2, 3]

    def test_separator_emitted_by_action_output(self):
        # The separator arrives at render time inside a value: the compiler
        # cannot see it, so the scoped parse must still split correctly.
        source = "kind: A\n{{ .Values.blob }}\nkind: B\n"
        context = {"Values": {"blob": "x: 1\n---"}}
        docs = assert_template_equivalent(source, context)
        assert len(docs) == 2

    def test_leading_and_trailing_separators(self):
        assert_template_equivalent("---\nkind: Only\n---\n", {})

    def test_separator_like_text_mid_line_is_not_a_boundary(self):
        source = "note: {{ .Values.x }}---\nkind: A\n"
        assert_template_equivalent(source, {"Values": {"x": "v"}})


class TestToYamlPlacements:
    CONTEXT = {
        "Values": {
            "labels": {"app": "web", "tier": "frontend"},
            "ports": [{"port": 80, "name": "http"}, {"port": 443, "name": "https"}],
            "empty": {},
            "scalar": "just-text",
            "number": 7,
        }
    }

    def test_whole_document_emission(self):
        docs = assert_template_equivalent("{{ toYaml .Values.labels }}\n", self.CONTEXT)
        assert docs == [{"app": "web", "tier": "frontend"}]

    def test_nindent_mapping_under_key(self):
        source = "metadata:\n  labels:\n    {{- toYaml .Values.labels | nindent 4 }}\n"
        assert_template_equivalent(source, self.CONTEXT)

    def test_mapping_splice_followed_by_text_keys(self):
        # The pattern the catalogue's components template uses: a native
        # splice and literal text lines merging into one mapping.
        source = (
            "labels:\n"
            "  {{- toYaml .Values.labels | nindent 2 }}\n"
            "  literal-key: literal-value\n"
        )
        docs = assert_template_equivalent(source, self.CONTEXT)
        assert docs[0]["labels"]["literal-key"] == "literal-value"
        assert docs[0]["labels"]["app"] == "web"

    def test_duplicate_keys_keep_text_path_semantics(self):
        source = (
            "labels:\n"
            "  app: overridden-before\n"
            "  {{- toYaml .Values.labels | nindent 2 }}\n"
        )
        docs = assert_template_equivalent(source, self.CONTEXT)
        assert docs[0]["labels"]["app"] == "web"  # last wins, as in real YAML

    def test_list_value_as_sole_key_value(self):
        source = "ports:\n  {{- toYaml .Values.ports | nindent 2 }}\n"
        docs = assert_template_equivalent(source, self.CONTEXT)
        assert docs[0]["ports"][0]["port"] == 80

    def test_toYaml_in_text_context_mid_line(self):
        # Inline (mid-line) structure cannot own a whole line: the fragment
        # must degrade to text exactly like the classic path.
        source = "value: {{ toYaml .Values.scalar }}\n"
        assert_template_equivalent(source, self.CONTEXT)

    def test_toYaml_scalar_and_number(self):
        assert_template_equivalent(
            "a: {{ toYaml .Values.number }}\nb:\n  {{- toYaml .Values.scalar | nindent 2 }}\n",
            self.CONTEXT,
        )

    def test_empty_mapping_splice(self):
        source = "selector:\n  {{- toYaml .Values.empty | nindent 2 }}\n"
        docs = assert_template_equivalent(source, self.CONTEXT)
        assert docs[0]["selector"] == {}

    def test_scalar_then_sibling_lines_falls_back(self):
        # A scalar placeholder followed by mapping lines at the same indent
        # is invalid YAML with placeholders but valid(ish) via the text
        # fallback; both paths must behave identically (here: both raise or
        # both parse -- the text is genuinely invalid, so both raise).
        source = (
            "field:\n"
            "  {{- toYaml .Values.scalar | nindent 2 }}\n"
            "  other: value\n"
        )
        from repro.helm.errors import RenderError

        chart_kwargs = dict(templates={"bad.yaml": source})
        text_chart = Chart.from_files("adv-text", **chart_kwargs)
        structured_chart = Chart.from_files("adv-structured", **chart_kwargs)
        with pytest.raises(RenderError):
            render_chart(text_chart, cached=False, structured=False)
        with pytest.raises(RenderError):
            render_chart(structured_chart, cached=False, structured=True)

    def test_text_glued_after_mapping_splice_falls_back(self):
        # Literal text fused onto the same output line as a mapping toYaml:
        # only the text path can interpret the glue, so the structured path
        # must fall back rather than silently dropping it.
        source = "data:\n  {{- toYaml .Values.m | nindent 2 }}x\n"
        docs = assert_template_equivalent(source, {"Values": {"m": {"a": 1, "b": 2}}})
        assert docs[0]["data"]["b"] == "2x"

    def test_quoted_glue_after_mapping_splice_fails_identically(self):
        from repro.helm.errors import RenderError

        source = "data:\n  {{- toYaml .Values.m | nindent 2 }}x\n"
        values = {"m": {"a": "1", "b": "2"}}  # quoted dump -> '2'x is invalid
        chart_kwargs = dict(templates={"glue.yaml": source})
        with pytest.raises(RenderError):
            render_chart(Chart.from_files("glue-a", values=dict(values), **chart_kwargs),
                         overrides=None, cached=False, structured=False)
        with pytest.raises(RenderError):
            render_chart(Chart.from_files("glue-b", values=dict(values), **chart_kwargs),
                         overrides=None, cached=False, structured=True)

    def test_carriage_return_line_endings(self):
        # CRLF template text: PyYAML treats \r as a line break, the fast
        # subset parser must bail rather than fold it into scalars.
        source = "kind: ConfigMap\r\nmeta:\n  {{- toYaml .Values.m | nindent 2 }}\n"
        docs = assert_template_equivalent(source, {"Values": {"m": {"a": 1}}})
        assert docs[0]["kind"] == "ConfigMap"

    def test_placeholder_prefix_collision_in_rendered_text(self):
        context = {"Values": {"labels": {"app": "web"}, "evil": f"{PLACEHOLDER_PREFIX}0__"}}
        source = (
            "evil: {{ .Values.evil }}\n"
            "labels:\n"
            "  {{- toYaml .Values.labels | nindent 2 }}\n"
        )
        docs = assert_template_equivalent(source, context)
        assert docs[0]["evil"] == f"{PLACEHOLDER_PREFIX}0__"
        assert docs[0]["labels"] == {"app": "web"}

    def test_toYaml_inside_if_and_range(self):
        source = (
            "{{- range .Values.items }}\n"
            "---\n"
            "item:\n"
            "  {{- if .enabled }}\n"
            "  labels:\n"
            "    {{- toYaml .labels | nindent 4 }}\n"
            "  {{- end }}\n"
            "{{- end }}\n"
        )
        context = {
            "Values": {
                "items": [
                    {"enabled": True, "labels": {"a": "1"}},
                    {"enabled": False, "labels": {"b": "2"}},
                ]
            }
        }
        docs = assert_template_equivalent(source, context)
        assert docs == [{"item": {"labels": {"a": "1"}}}, {"item": None}]


class TestEmptyAndNonMappingDocuments:
    def test_whitespace_only_template(self):
        assert assert_template_equivalent("\n  \n\n", {}) == []

    def test_only_separators(self):
        assert assert_template_equivalent("---\n---\n---\n", {}) == []

    def test_null_documents_are_dropped(self):
        assert assert_template_equivalent("null\n---\nkind: A\n---\n~\n", {}) == [
            {"kind": "A"}
        ]

    def test_conditionally_empty_template(self):
        source = "{{- if .Values.enabled }}\nkind: A\n{{- end }}\n"
        assert assert_template_equivalent(source, {"Values": {"enabled": False}}) == []

    def test_non_mapping_top_level_list(self):
        docs = assert_template_equivalent("- 1\n- 2\n---\n- a: 1\n", {})
        assert docs == [[1, 2], [{"a": 1}]]

    def test_non_mapping_top_level_scalar(self):
        assert assert_template_equivalent("just-a-scalar\n", {}) == ["just-a-scalar"]

    def test_non_mapping_toYaml_document(self):
        docs = assert_template_equivalent(
            "{{ toYaml .Values.items }}\n", {"Values": {"items": [1, 2]}}
        )
        assert docs == [[1, 2]]

    def test_non_mapping_document_fails_object_construction_identically(self):
        chart_kwargs = dict(templates={"list.yaml": "- not\n- a\n- mapping\n"})
        with pytest.raises(ParseError):
            render_chart(Chart.from_files("adv-a", **chart_kwargs), cached=False,
                         structured=False)
        with pytest.raises(ParseError):
            render_chart(Chart.from_files("adv-b", **chart_kwargs), cached=False,
                         structured=True)


class TestScalarResolutionParity:
    """The fast subset parser must type plain scalars exactly like PyYAML."""

    @pytest.mark.parametrize(
        "literal",
        [
            "8080", "-5", "+3", "0", "0x1F", "0b101", "010", "08", "1_000",
            "1.5", "-0.5", ".5", "1e5", "1.0e5", ".inf", "-.inf",
            "true", "False", "yes", "NO", "on", "Off",
            "null", "Null", "~",
            "plain-string", "a b c", "v1.2.3", "8.15.3", "acme/image-name",
            "2024-01-01", "2024-01-01T00:00:00Z", "07:30",
            '"quoted: with colon"', "'single quoted'",
        ],
    )
    def test_scalar_literal(self, literal):
        assert_template_equivalent(f"value: {literal}\n", {})

    def test_nan_resolves_to_nan_on_both_paths(self):
        import math

        text = template_documents("value: .nan\n", {}, structured=False)
        structured = template_documents("value: .nan\n", {}, structured=True)
        assert math.isnan(text[0]["value"]) and math.isnan(structured[0]["value"])

    def test_value_special_scalar_fails_identically(self):
        # "=" resolves to the YAML value tag, which SafeLoader cannot
        # construct: both render paths must surface the same RenderError.
        from repro.helm.errors import RenderError

        chart_kwargs = dict(templates={"eq.yaml": "value: =\n"})
        with pytest.raises(RenderError):
            render_chart(Chart.from_files("adv-eq-a", **chart_kwargs), cached=False,
                         structured=False)
        with pytest.raises(RenderError):
            render_chart(Chart.from_files("adv-eq-b", **chart_kwargs), cached=False,
                         structured=True)

    def test_fast_parser_handles_catalogue_shapes(self):
        # Sanity: the common shapes stay on the fast path (no exception).
        parsed = parse_simple_yaml(
            "apiVersion: apps/v1\n"
            "kind: Deployment\n"
            "metadata:\n"
            "  name: web\n"
            "spec:\n"
            "  replicas: 2\n"
            "  ports:\n"
            "    - containerPort: 8080\n"
            "      name: http\n"
            "  ingress:\n"
            "    - {}\n"
        )
        assert parsed[0]["spec"]["replicas"] == 2
        assert parsed[0]["spec"]["ingress"] == [{}]


class TestScalarInterpolationMemo:
    """Interpolated scalars must become placeholders, not memo-busting text.

    Before the scalar-fragment fix, ``name: {{ .Values.name }}`` baked the
    rendered value into the skeleton, so every name variant forced a fresh
    PyYAML parse and the skeleton memo never hit (the Figure 4b sweep
    re-renders the catalogue under per-release name overrides).  These tests
    pin both halves: placeholder substitution stays byte-identical to the
    text path, and the parse count stays flat across value variants.
    """

    VARIANT_SOURCE = (
        "apiVersion: v1\n"
        "kind: Service\n"
        "metadata:\n"
        "  name: {{ .Values.name }}\n"
        "  namespace: {{ .Values.ns }}\n"
        "spec:\n"
        "  ports:\n"
        "    - {{ .Values.port }}\n"
    )

    def test_parse_count_flat_across_value_variants(self):
        from repro.helm import skeleton_parse_count

        engine = TemplateEngine()

        def render_variant(index: int):
            context = {
                "Values": {"name": f"app-{index}", "ns": "prod", "port": 8080 + index}
            }
            fragments = engine.render_fragments(self.VARIANT_SOURCE, context, "svc.yaml")
            return assemble_documents(fragments, "svc.yaml")[0]

        first = render_variant(0)
        before = skeleton_parse_count()
        for index in range(1, 6):
            documents = render_variant(index)
            assert documents[0]["metadata"]["name"] == f"app-{index}"
            assert documents[0]["spec"]["ports"] == [8080 + index]
        assert skeleton_parse_count() == before, (
            "scalar interpolation defeated the skeleton memo"
        )
        assert first[0]["metadata"]["name"] == "app-0"

    def test_catalogue_name_variants_reuse_skeletons(self, catalog_apps):
        # The Figure 4b shape: the same charts re-rendered under different
        # nameOverride values must not re-parse a single skeleton.
        from repro.helm import skeleton_parse_count

        sample = catalog_apps[:8]
        for app in sample:
            render_chart(app.chart, overrides={"nameOverride": "variant-0"}, cached=False)
        before = skeleton_parse_count()
        for variant in range(1, 4):
            overrides = {"nameOverride": f"variant-{variant}"}
            for app in sample:
                render_chart(app.chart, overrides=overrides, cached=False)
        assert skeleton_parse_count() == before, (
            "name-variant re-renders forced fresh skeleton parses"
        )

    @pytest.mark.parametrize(
        "value",
        [
            "plain", "a b c", "v1.2.3", "8080", "-5", "1.5", ".inf", "true",
            "null", "~", "2024-01-01", "07:30", "0x1F", "010", "",
            "  padded  ", "with: colon", "# not a comment", "[1, 2]",
            "{a: 1}", '"quoted"', "'single'", "- leading dash", "-",
            "--- doc", "multi\nline", "tab\there", "*anchor", "&ref", "!tag",
            "| block", "> folded", "%directive", "@at", "`tick",
        ],
    )
    def test_interpolated_scalar_matches_text_path(self, value):
        # Both mapping-value and list-item contexts, the two placements the
        # placeholder fast path accepts; anything it cannot type must fall
        # back to byte-identical text behaviour, never diverge.
        context = {"Values": {"x": value}}
        for source in ("value: {{ .Values.x }}\n", "items:\n  - {{ .Values.x }}\n"):
            try:
                text_docs = template_documents(source, context, structured=False)
            except Exception:
                # The raw yaml_load_all helper surfaces ScannerError where the
                # structured assembler wraps it in RenderError (as the real
                # text pipeline does); parity here means both must fail.
                with pytest.raises(Exception):
                    template_documents(source, context, structured=True)
                continue
            assert template_documents(source, context, structured=True) == text_docs

    def test_interpolated_scalar_mid_line_stays_text(self):
        source = "value: prefix-{{ .Values.x }}-suffix\n"
        docs = assert_template_equivalent(source, {"Values": {"x": "mid"}})
        assert docs[0]["value"] == "prefix-mid-suffix"

    def test_interpolated_scalar_as_key_falls_back(self):
        source = "{{ .Values.k }}: value\n"
        docs = assert_template_equivalent(source, {"Values": {"k": "dynamic"}})
        assert docs[0]["dynamic"] == "value"


class TestFromYamlNative:
    def test_from_yaml_of_to_yaml_roundtrip(self):
        source = (
            "{{- $copy := fromYaml (toYaml .Values.cfg) }}\n"
            "a: {{ $copy.key }}\n"
            "nested:\n"
            "  {{- toYaml $copy | nindent 2 }}\n"
        )
        assert_template_equivalent(source, {"Values": {"cfg": {"key": "v", "n": [1, 2]}}})

    def test_piped_pair_collapses_identically(self):
        source = "{{- $copy := .Values.cfg | toYaml | fromYaml }}\nkey: {{ $copy.key }}\n"
        assert_template_equivalent(source, {"Values": {"cfg": {"key": 7}}})

    def test_undumpable_value_raises_render_error_on_both_paths(self):
        from repro.helm.errors import RenderError

        class Opaque:
            pass

        source = "{{- if .Values.x | toYaml | fromYaml }}y: 1\n{{- end }}\n"
        for structured in (False, True):
            chart = Chart.from_files(
                f"opaque-{structured}",
                values={"x": {"a": Opaque()}},
                templates={"t.yaml": source},
            )
            with pytest.raises(RenderError):
                render_chart(chart, cached=False, structured=structured)

    def test_resolver_sensitive_string_stays_text_equivalent(self):
        # "2024-01-01" re-types through YAML; the native peephole must not
        # short-circuit that.
        engine_a, engine_b = TemplateEngine(), TemplateEngine()
        source = "{{- $v := .Values.s | toYaml | fromYaml }}{{ kindIs \"string\" $v }}"
        context = {"Values": {"s": "2024-01-01"}}
        assert engine_a.render(source, context) == engine_b.render(source, context)


class TestRenderCacheStructuredKeying:
    def test_structured_and_text_entries_do_not_collide(self):
        from repro.helm import RenderCache

        app = build_application("cache-mix", "Org", InjectionPlan(m1=1, m6=True))
        cache = RenderCache()
        structured = cache.render(app.chart, structured=True)
        text = cache.render(app.chart, structured=False)
        assert cache.stats()["misses"] == 2
        assert structured.documents == text.documents
        assert structured.objects == text.objects
        # Hits keep serving the matching flavour.
        again = cache.render(app.chart, structured=True)
        assert cache.stats()["hits"] == 1
        assert again.sources == structured.sources
