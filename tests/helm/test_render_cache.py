"""Render-cache correctness: keying, hit semantics, and warm-path guards.

The memoized render pipeline must be a pure acceleration: cached renders are
indistinguishable from fresh ones (the differential test sweeps the full
catalogue), cache keys are content-based (equal-but-not-identical values
dicts share an entry; any mutation misses), and a warm render performs no
template re-parsing at all (parse-counter guard).  Hit semantics come in two
flavours: the default *shared* mode hands out sealed interned objects by
reference (mutation raises, sharing cannot be corrupted), while the
``shared=False`` reference mode keeps the historical copy-on-read pickle
behaviour (returned objects are private mutable copies).
"""

from __future__ import annotations

import copy

import pytest

from repro.datasets import build_application, build_catalog, prerender_catalog
from repro.datasets.spec import InjectionPlan
from repro.helm import (
    Chart,
    RenderCache,
    clear_template_cache,
    render_chart,
    shared_render_cache,
    template_parse_count,
)
from repro.k8s import ImmutableObjectError


def _app():
    return build_application(
        name="cache-app",
        organization="Cache Org",
        plan=InjectionPlan(m1=2, m3=1, m5a=1, m6=True),
        archetype="messaging",
        dataset="Cache",
    )


@pytest.fixture
def cache() -> RenderCache:
    return RenderCache()


class TestCacheKeying:
    def test_equal_but_not_identical_values_hit(self, cache: RenderCache):
        chart = _app().chart
        overrides = {"networkPolicy": {"enabled": True}, "extra": [1, 2, {"a": "b"}]}
        cache.render(chart, overrides=overrides)
        assert cache.stats()["misses"] == 1
        cache.render(chart, overrides=copy.deepcopy(overrides))
        assert cache.stats() == {"hits": 1, "misses": 1, "corruptions": 0, "entries": 1}
        # Key order must not matter either.
        reordered = {"extra": [1, 2, {"a": "b"}], "networkPolicy": {"enabled": True}}
        cache.render(chart, overrides=reordered)
        assert cache.stats()["hits"] == 2

    def test_mutated_values_miss(self, cache: RenderCache):
        chart = _app().chart
        overrides = {"networkPolicy": {"enabled": True}}
        cache.render(chart, overrides=overrides)
        overrides["networkPolicy"]["enabled"] = False
        rendered = cache.render(chart, overrides=overrides)
        assert cache.stats() == {"hits": 0, "misses": 2, "corruptions": 0, "entries": 2}
        assert not rendered.objects_of_kind("NetworkPolicy")

    def test_chart_content_mutation_misses(self, cache: RenderCache):
        chart = _app().chart
        cache.render(chart)
        chart.add_template("extra.yaml", "apiVersion: v1\nkind: Namespace\nmetadata:\n  name: extra\n")
        rendered = cache.render(chart)
        assert cache.stats()["misses"] == 2
        assert any(obj.kind == "Namespace" for obj in rendered.objects)

    def test_rebuilt_chart_with_same_content_hits(self, cache: RenderCache):
        cache.render(_app().chart)
        cache.render(_app().chart)  # fresh object, identical content
        assert cache.stats() == {"hits": 1, "misses": 1, "corruptions": 0, "entries": 1}


class TestSharedReferenceHits:
    def test_warm_hits_share_sealed_objects(self):
        cache = RenderCache()  # shared mode is the default
        chart = _app().chart
        first = cache.render(chart)
        second = cache.render(chart)
        assert second.objects == first.objects
        # Hits return the interned objects themselves: no unpickle, no
        # objects_from_dicts, no namespace-defaulting rebuild.
        assert all(a is b for a, b in zip(first.objects, second.objects))
        # ... but the top-level containers are private per call.
        assert first.objects is not second.objects
        second.objects.clear()
        assert cache.render(chart).objects

    def test_shared_objects_reject_mutation(self):
        cache = RenderCache()
        rendered = cache.render(_app().chart)
        with pytest.raises(ImmutableObjectError):
            rendered.objects[0].metadata.namespace = "mutated"
        with pytest.raises(ImmutableObjectError):
            rendered.objects[0].metadata = None

    def test_shared_and_reference_mode_render_identically(self):
        chart = _app().chart
        shared = RenderCache()
        reference = RenderCache(shared=False)
        for attempt in range(2):  # cold then warm
            a = shared.render(chart)
            b = reference.render(chart)
            assert a.documents == b.documents, attempt
            assert a.objects == b.objects, attempt
            assert a.sources == b.sources, attempt
            assert a.values == b.values, attempt


class TestCopyOnRead:
    def test_mutating_returned_inventory_never_leaks(self):
        # shared=False is the reference mode: pickle copy-on-read, mutable
        # returned objects, exactly the pre-interning contract.
        cache = RenderCache(shared=False)
        chart = _app().chart
        first = cache.render(chart)
        # Mutate everything a caller could plausibly touch (the cluster
        # facade stamps namespaces onto installed objects, for example).
        for obj in first.objects:
            obj.metadata.namespace = "mutated"
        first.objects.clear()
        first.documents[0]["kind"] = "Corrupted"
        first.values["networkPolicy"] = "broken"
        second = cache.render(chart)
        assert second.objects, "cached objects were lost to a caller mutation"
        assert all(obj.metadata.namespace != "mutated" for obj in second.objects)
        assert all(doc.get("kind") != "Corrupted" for doc in second.documents)
        assert isinstance(second.values["networkPolicy"], dict)
        # And hits hand out distinct copies every time.
        third = cache.render(chart)
        assert second.objects == third.objects
        assert all(a is not b for a, b in zip(second.objects, third.objects))


class TestDifferentialFullCatalogue:
    def test_cached_render_equals_fresh_render_across_catalogue(self):
        cache = RenderCache()
        for app in build_catalog():
            fresh = render_chart(app.chart, cached=False)
            via_cache_cold = cache.render(app.chart)
            via_cache_warm = cache.render(app.chart)
            for cached in (via_cache_cold, via_cache_warm):
                assert cached.documents == fresh.documents, app.name
                assert cached.objects == fresh.objects, app.name
                assert cached.sources == fresh.sources, app.name
                assert cached.values == fresh.values, app.name
                assert cached.release == fresh.release, app.name
        assert cache.stats()["hits"] == cache.stats()["misses"]


class TestPrerenderCatalog:
    def test_prerender_warms_shared_cache_for_consumers(self):
        applications = build_catalog(("CNCF",))
        shared = shared_render_cache()
        shared.clear()
        fingerprints = prerender_catalog(applications)
        assert len(fingerprints) == len(applications)
        assert fingerprints == [app.chart.fingerprint() for app in applications]
        misses = shared.stats()["misses"]
        # Consumers rendering the same (chart, values) pairs now only hit.
        for app, fingerprint in zip(applications, fingerprints):
            render_chart(app.chart, fingerprint=fingerprint)
            render_chart(app.chart)  # fingerprint omitted: same key
        assert shared.stats()["misses"] == misses
        assert shared.stats()["hits"] >= 2 * len(applications)

    def test_prerender_with_overrides_warms_the_override_entry(self):
        applications = build_catalog(("CNCF",))[:3]
        shared = shared_render_cache()
        shared.clear()
        overrides = {"networkPolicy": {"enabled": True}}
        prerender_catalog(applications, overrides=overrides)
        misses = shared.stats()["misses"]
        for app in applications:
            render_chart(app.chart, overrides={"networkPolicy": {"enabled": True}})
        assert shared.stats()["misses"] == misses


class TestWarmPathGuards:
    def test_warm_render_performs_no_template_reparse(self):
        chart = _app().chart
        shared_render_cache().clear()
        render_chart(chart)  # cold: compiles whatever is not yet cached
        parses_before = template_parse_count()
        for _ in range(3):
            render_chart(chart)
        assert template_parse_count() == parses_before

    def test_even_cache_miss_reuses_compiled_templates(self):
        chart = _app().chart
        render_chart(chart, cached=False)  # ensure sources are compiled
        parses_before = template_parse_count()
        # A different release is a render-cache miss, but the template
        # sources are unchanged, so the compile cache must absorb it.
        render_chart(chart, release_name="other-release")
        assert template_parse_count() == parses_before

    def test_template_source_change_reparses(self):
        engine_chart = Chart.from_files(
            name="guard", templates={"cm.yaml": "kind: ConfigMap\nmetadata:\n  name: a\n"}
        )
        render_chart(engine_chart)
        parses_before = template_parse_count()
        engine_chart.templates[0].source = "kind: ConfigMap\nmetadata:\n  name: b\n"
        render_chart(engine_chart)
        assert template_parse_count() == parses_before + 1

    def test_clear_template_cache_forces_reparse(self):
        chart = _app().chart
        render_chart(chart, cached=False)
        clear_template_cache()
        parses_before = template_parse_count()
        render_chart(chart, cached=False)
        assert template_parse_count() > parses_before
