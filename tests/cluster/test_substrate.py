"""Unit tests for IPAM, behaviours, nodes, runtime and the API server."""

import pytest

from repro.cluster import (
    AddressPool,
    AdmissionError,
    AlreadyExistsError,
    APIServer,
    BehaviorRegistry,
    ClusterIPAM,
    ContainerBehavior,
    ContainerRuntime,
    IPAMError,
    ListenSpec,
    Node,
    NotFoundError,
    Scheduler,
    SchedulingError,
    behavior_with_closed_ports,
    behavior_with_dynamic_ports,
    behavior_with_undeclared_ports,
    faithful_behavior,
)
from repro.k8s import Container, ContainerPort, EnvVar, ObjectMeta, Pod, PodSpec
from tests.conftest import make_pod


class TestAddressPool:
    def test_allocation_is_sequential_and_idempotent(self):
        pool = AddressPool("10.0.0.0/24")
        first = pool.allocate("a")
        second = pool.allocate("b")
        assert first != second
        assert pool.allocate("a") == first

    def test_release_recycles_addresses(self):
        pool = AddressPool("10.0.0.0/24")
        address = pool.allocate("a")
        pool.release("a")
        assert pool.allocate("b") == address

    def test_lookup_and_owner_of(self):
        pool = AddressPool("10.0.0.0/24")
        address = pool.allocate("a")
        assert pool.lookup("a") == address
        assert pool.owner_of(address) == "a"
        assert pool.lookup("missing") is None

    def test_contains(self):
        pool = AddressPool("10.244.0.0/16")
        assert pool.contains("10.244.3.7")
        assert not pool.contains("192.168.0.1")
        assert not pool.contains("not-an-ip")

    def test_exhaustion_raises(self):
        pool = AddressPool("10.0.0.0/30")
        pool.allocate("a")
        with pytest.raises(IPAMError):
            for index in range(10):
                pool.allocate(f"owner-{index}")

    def test_cluster_ipam_classification(self):
        ipam = ClusterIPAM()
        pod_ip = ipam.pods.allocate("default/web-0")
        service_ip = ipam.services.allocate("default/web")
        node_ip = ipam.nodes.allocate("node-1")
        assert ipam.classify(pod_ip) == "pod"
        assert ipam.classify(service_ip) == "service"
        assert ipam.classify(node_ip) == "node"
        assert ipam.classify("8.8.8.8") == "external"


class TestBehaviors:
    def test_faithful_behavior_opens_declared_ports(self):
        container = Container(name="c", ports=[ContainerPort(8080)])
        listens = faithful_behavior().effective_listens(container)
        assert [listen.port for listen in listens] == [8080]

    def test_undeclared_ports_behavior(self):
        container = Container(name="c", ports=[ContainerPort(8080)])
        behavior = behavior_with_undeclared_ports([9999])
        ports = {listen.port for listen in behavior.effective_listens(container)}
        assert ports == {8080, 9999}

    def test_closed_ports_behavior_skips_declared(self):
        container = Container(name="c", ports=[ContainerPort(8080), ContainerPort(9090)])
        behavior = behavior_with_closed_ports([9090])
        ports = {listen.port for listen in behavior.effective_listens(container)}
        assert ports == {8080}

    def test_dynamic_ports_behavior(self):
        behavior = behavior_with_dynamic_ports(2)
        assert behavior.dynamic_listen_count() == 2

    def test_static_port_env_pins_dynamic_port(self):
        behavior = ContainerBehavior(
            extra_listens=[ListenSpec(port=None)], static_port_env="FIXED_PORT"
        )
        container = Container(name="c", env=[EnvVar("FIXED_PORT", "7777")])
        ports = {listen.port for listen in behavior.effective_listens(container)}
        assert 7777 in ports

    def test_registry_lookup_falls_back_to_faithful(self):
        registry = BehaviorRegistry()
        assert registry.lookup("unknown/image").listen_on_declared is True
        assert "unknown/image" not in registry

    def test_registry_merge(self):
        first, second = BehaviorRegistry(), BehaviorRegistry()
        first.register("a", faithful_behavior())
        second.register("b", faithful_behavior())
        merged = first.merged_with(second)
        assert set(merged.images()) == {"a", "b"}


class TestNode:
    def test_worker_node_defaults(self):
        node = Node(name="worker-1")
        assert node.schedulable
        assert 22 in node.host_port_numbers()
        assert 6443 not in node.host_port_numbers()

    def test_control_plane_node(self):
        node = Node(name="cp", control_plane=True)
        assert not node.schedulable
        assert 6443 in node.host_port_numbers()

    def test_assignment_tracking(self):
        node = Node(name="worker-1")
        node.assign("pod-a")
        node.assign("pod-a")
        assert node.pod_names == ["pod-a"]
        node.unassign("pod-a")
        assert node.free_capacity == node.capacity


class TestContainerRuntime:
    def _runtime_and_pod(self, behavior=None, image="img", ports=(8080,)):
        registry = BehaviorRegistry()
        if behavior is not None:
            registry.register(image, behavior)
        runtime = ContainerRuntime(registry, seed=3)
        pod = Pod(
            metadata=ObjectMeta(name="p"),
            spec=PodSpec(containers=[Container(name="c", image=image,
                                               ports=[ContainerPort(p) for p in ports])]),
        )
        node = Node(name="worker-1", ip="192.168.0.5")
        return runtime, pod, node

    def test_start_pod_opens_declared_ports(self):
        runtime, pod, node = self._runtime_and_pod()
        running = runtime.start_pod(pod, "10.244.0.2", node)
        assert running.listening_ports() == {8080}

    def test_dynamic_ports_change_on_restart(self):
        runtime, pod, node = self._runtime_and_pod(behavior_with_dynamic_ports(1))
        running = runtime.start_pod(pod, "10.244.0.2", node)
        before = running.listening_ports() - {8080}
        runtime.restart_pod(running)
        after = running.listening_ports() - {8080}
        assert before and after and before != after
        assert running.restart_count == 1

    def test_static_ports_survive_restart(self):
        runtime, pod, node = self._runtime_and_pod()
        running = runtime.start_pod(pod, "10.244.0.2", node)
        runtime.restart_pod(running)
        assert running.listening_ports() == {8080}

    def test_host_network_pod_sees_host_ports(self):
        runtime, pod, node = self._runtime_and_pod()
        pod.spec.host_network = True
        running = runtime.start_pod(pod, node.ip, node)
        assert 22 in running.listening_ports()
        assert 8080 in running.listening_ports()

    def test_loopback_sockets_not_reachable_from_network(self):
        behavior = ContainerBehavior(
            listen_on_declared=True,
            extra_listens=[ListenSpec(port=6060, interface="127.0.0.1")],
        )
        runtime, pod, node = self._runtime_and_pod(behavior)
        running = runtime.start_pod(pod, "10.244.0.2", node)
        assert 6060 in running.listening_ports(include_loopback=True)
        assert 6060 not in running.listening_ports(include_loopback=False)

    def test_named_ports_resolution(self):
        runtime, pod, node = self._runtime_and_pod()
        pod.spec.containers[0].ports = [ContainerPort(8080, name="http")]
        running = runtime.start_pod(pod, "10.244.0.2", node)
        assert running.named_ports() == {"http": 8080}

    def test_socket_deduplication(self):
        behavior = ContainerBehavior(
            listen_on_declared=True, extra_listens=[ListenSpec(port=8080)]
        )
        runtime, pod, node = self._runtime_and_pod(behavior)
        running = runtime.start_pod(pod, "10.244.0.2", node)
        assert len([s for s in running.sockets if s.port == 8080]) == 1


class TestScheduler:
    def test_least_loaded_placement(self):
        nodes = [Node(name="w1"), Node(name="w2")]
        scheduler = Scheduler(nodes)
        scheduler.schedule(make_pod("a"))
        scheduler.schedule(make_pod("b"))
        assert len(nodes[0].pod_names) == 1
        assert len(nodes[1].pod_names) == 1

    def test_node_name_pinning(self):
        nodes = [Node(name="w1"), Node(name="w2")]
        scheduler = Scheduler(nodes)
        pod = make_pod("pinned")
        pod.spec.node_name = "w2"
        assert scheduler.schedule(pod).name == "w2"

    def test_unknown_pinned_node_raises(self):
        scheduler = Scheduler([Node(name="w1")])
        pod = make_pod("pinned")
        pod.spec.node_name = "missing"
        with pytest.raises(SchedulingError):
            scheduler.schedule(pod)

    def test_no_schedulable_nodes_raises(self):
        scheduler = Scheduler([Node(name="cp", control_plane=True)])
        with pytest.raises(SchedulingError):
            scheduler.schedule(make_pod("a"))

    def test_node_for_lookup(self):
        nodes = [Node(name="w1")]
        scheduler = Scheduler(nodes)
        scheduler.schedule(make_pod("a"))
        assert scheduler.node_for("a").name == "w1"
        assert scheduler.node_for("missing") is None


class TestAPIServer:
    def test_apply_and_get(self):
        api = APIServer()
        api.apply(make_pod("a"))
        assert api.store.get("Pod", "a").name == "a"

    def test_get_missing_raises(self):
        with pytest.raises(NotFoundError):
            APIServer().store.get("Pod", "missing")

    def test_duplicate_put_without_replace_raises(self):
        api = APIServer()
        api.apply(make_pod("a"))
        with pytest.raises(AlreadyExistsError):
            api.store.put(make_pod("a"))

    def test_delete(self):
        api = APIServer()
        api.apply(make_pod("a"))
        api.delete("Pod", "a")
        assert not api.store.exists("Pod", "a")

    def test_list_by_kind_and_namespace(self):
        api = APIServer()
        api.apply(make_pod("a"))
        api.apply(make_pod("b", namespace="prod"))
        assert len(api.store.list("Pod")) == 2
        assert len(api.store.list("Pod", namespace="prod")) == 1

    def test_admission_controller_can_reject(self):
        class DenyAll:
            name = "deny-all"

            def review(self, obj, store):
                raise AdmissionError("nope")

        api = APIServer()
        api.register_admission_controller(DenyAll())
        with pytest.raises(AdmissionError):
            api.apply(make_pod("a"))
        assert api.denied_objects() == ["Pod/default/a"]

    def test_unregister_admission_controller(self):
        class DenyAll:
            name = "deny-all"

            def review(self, obj, store):
                raise AdmissionError("nope")

        api = APIServer()
        api.register_admission_controller(DenyAll())
        api.unregister_admission_controller("deny-all")
        api.apply(make_pod("a"))

    def test_apply_all_with_error_callback_collects_invalid_objects(self):
        api = APIServer()
        invalid = Pod(metadata=ObjectMeta(name="bad"), spec=PodSpec())  # no containers
        errors = []
        applied = api.apply_all(
            [make_pod("a"), invalid],
            on_error=lambda obj, exc: errors.append((obj.name, str(exc))),
        )
        assert [obj.name for obj in applied] == ["a"]
        assert errors and errors[0][0] == "bad"

    def test_apply_all_without_callback_raises(self):
        api = APIServer()
        invalid = Pod(metadata=ObjectMeta(name="bad"), spec=PodSpec())
        with pytest.raises(Exception):
            api.apply_all([invalid])
