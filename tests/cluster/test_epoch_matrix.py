"""Epoch-invalidation matrix: every mutating cluster verb x every epoch cache.

``Cluster.policy_epoch`` is the single invalidation signal for the compiled
policy index and the service-binding reconcile.  This matrix pins the
contract explicitly: **every** mutating verb -- install, uninstall, restarts,
direct API writes, namespace label updates, session resets -- must move the
epoch, and immediately afterwards both epoch-keyed caches must serve state
identical to a from-scratch recomputation.  A verb that forgets to bump the
epoch would serve stale isolating-policy sets or stale endpoints; the
namespace-label-update verb was exactly such a gap (labels reached the
enforcer without a store write) until this matrix forced the fix.
"""

from __future__ import annotations

import pytest

from repro.cluster import BehaviorRegistry, Cluster, ContainerBehavior, ListenSpec
from repro.k8s import Selector, allow_ports_policy, deny_all_policy, make_namespace
from tests.conftest import make_deployment, make_pod, make_service


def build_cluster() -> Cluster:
    registry = BehaviorRegistry()
    registry.register(
        "example/web",
        ContainerBehavior(listen_on_declared=True, extra_listens=[ListenSpec(port=None)]),
    )
    cluster = Cluster(name="matrix", worker_count=2, behaviors=registry, seed=5)
    cluster.install(
        [
            make_deployment(name="web", replicas=2, ports=[8080]),
            make_service(name="web"),
            allow_ports_policy("allow-web", Selector(match_labels={"app": "web"}), [8080]),
        ],
        app_name="web",
    )
    return cluster


# --- The mutating verbs -----------------------------------------------------


def verb_api_apply_create(cluster: Cluster) -> None:
    cluster.api.apply(deny_all_policy("deny-all"))


def verb_api_apply_replace(cluster: Cluster) -> None:
    # Re-point the service selector at nothing: bindings must drop backends.
    cluster.api.apply(make_service(name="web", selector={"app": "retired"}))


def verb_api_delete(cluster: Cluster) -> None:
    cluster.api.delete("NetworkPolicy", "allow-web")


def verb_install(cluster: Cluster) -> None:
    cluster.install(
        [
            make_deployment(name="extra", labels={"app": "extra"}, ports=[9000]),
            make_service(name="extra", selector={"app": "extra"}, target_port=9000),
            deny_all_policy("deny-extra"),
        ],
        app_name="extra",
    )


def verb_uninstall(cluster: Cluster) -> None:
    cluster.uninstall("web")


def verb_restart_application(cluster: Cluster) -> None:
    cluster.restart_application("web")


def verb_restart_all(cluster: Cluster) -> None:
    cluster.restart_all()


def verb_namespace_label_update(cluster: Cluster) -> None:
    # Installing a Namespace object with new labels onto an existing
    # namespace changes namespaceSelector semantics: it must count as a
    # policy-relevant mutation like any other write.
    cluster.install(
        [make_namespace("default", {"kubernetes.io/metadata.name": "default", "env": "prod"})],
        app_name="ns-update",
    )


def verb_reset(cluster: Cluster) -> None:
    cluster.reset()


VERBS = [
    verb_api_apply_create,
    verb_api_apply_replace,
    verb_api_delete,
    verb_install,
    verb_uninstall,
    verb_restart_application,
    verb_restart_all,
    verb_namespace_label_update,
    verb_reset,
]


# --- The epoch caches -------------------------------------------------------


def assert_policy_index_fresh(cluster: Cluster, old_index) -> None:
    index = cluster.policy_index()
    assert index is not old_index, "policy index served stale compiled state"
    assert index.epoch == cluster.policy_epoch
    assert [p.name for p in index.policies] == [
        p.name for p in cluster.network_policies()
    ]


def assert_service_bindings_fresh(cluster: Cluster) -> None:
    cached = {
        (b.service.namespace, b.service.name): sorted(p.name for p in b.backends)
        for b in cluster.service_bindings()
    }
    recomputed = {
        (b.service.namespace, b.service.name): sorted(p.name for p in b.backends)
        for b in cluster.endpoint_controller.bind(
            cluster.services(), cluster.running_pods()
        )
    }
    assert cached == recomputed, "service bindings served stale endpoints"


# --- The matrix -------------------------------------------------------------


@pytest.mark.parametrize("verb", VERBS, ids=lambda v: v.__name__.removeprefix("verb_"))
@pytest.mark.parametrize("cache", ["policy_index", "service_bindings"])
def test_every_verb_bumps_the_epoch_and_refreshes(verb, cache):
    cluster = build_cluster()
    # Warm both caches so staleness (not cold misses) is what gets tested.
    old_index = cluster.policy_index()
    cluster.service_bindings()
    epoch_before = cluster.policy_epoch

    verb(cluster)

    assert cluster.policy_epoch > epoch_before, (
        f"{verb.__name__} did not move the policy epoch"
    )
    if cache == "policy_index":
        assert_policy_index_fresh(cluster, old_index)
    else:
        assert_service_bindings_fresh(cluster)


def test_reads_do_not_move_the_epoch_and_reuse_the_index():
    cluster = build_cluster()
    index = cluster.policy_index()
    epoch = cluster.policy_epoch
    cluster.running_pods()
    cluster.services()
    cluster.network_policies()
    cluster.service_bindings()
    cluster.reachability_matrix()
    cluster.host_port_baseline()
    assert cluster.policy_epoch == epoch
    assert cluster.policy_index() is index


def test_restart_refreshes_socket_dependent_state():
    cluster = build_cluster()
    dynamic_before = {
        p.name: sorted(s.port for s in p.sockets if s.dynamic)
        for p in cluster.running_pods(app_name="web")
    }
    cluster.restart_all()
    dynamic_after = {
        p.name: sorted(s.port for s in p.sockets if s.dynamic)
        for p in cluster.running_pods(app_name="web")
    }
    assert dynamic_before != dynamic_after
    # Bindings still point at the live RunningPod objects after the restart.
    binding = cluster.binding_for("web")
    assert {p.name for p in binding.backends} == {"web-0", "web-1"}


def test_namespace_label_update_reaches_the_store_and_the_enforcer():
    cluster = build_cluster()
    verb_namespace_label_update(cluster)
    stored = cluster.api.store.get("Namespace", "default", "")
    assert stored.labels.get("env") == "prod"
    assert cluster.enforcer.namespace_labels("default").get("env") == "prod"


def test_labelless_ensure_does_not_clobber_existing_namespace_labels():
    """Installing a release into an existing namespace keeps its labels."""
    cluster = build_cluster()
    verb_namespace_label_update(cluster)
    epoch = cluster.policy_epoch
    # A later install into "default" ensures the namespace without labels:
    # the custom labels (and the epoch) must be left alone by the ensure.
    cluster.install([make_pod("late-arrival")], app_name="late")
    assert cluster.enforcer.namespace_labels("default").get("env") == "prod"
    stored = cluster.api.store.get("Namespace", "default", "")
    assert stored.labels.get("env") == "prod"
    assert cluster.policy_epoch > epoch  # the pod install itself moved it
