"""The ClusterError hierarchy: specific errors, pickling, pool reusability.

Three contracts:

* failure modes raise their *specific* :class:`ClusterError` subclass --
  IPAM pool exhaustion is an :class:`IPAMError`, an unplaceable pod is a
  :class:`SchedulingError`, a duplicate object is an
  :class:`AlreadyExistsError` -- never a bare assert or ``KeyError``;
* every error in the hierarchy round-trips through pickle verbatim
  (type, message, extra attributes, chart-context annotation), because the
  parallel sweeps ship them across process-pool boundaries;
* an error mid-install does not poison a pooled cluster: after ``reset()``
  the same skeleton installs a healthy application normally.
"""

import pickle

import pytest

from repro.cluster import (
    AddressPool,
    AdmissionError,
    AlreadyExistsError,
    AnalysisSession,
    Cluster,
    ClusterError,
    ClusterNetwork,
    DuplicatePodError,
    IPAMError,
    NetworkPolicyEnforcer,
    Node,
    NotFoundError,
    PodNotFound,
    RunningPod,
    SchedulingError,
    Socket,
    actionable_message,
)
from repro.k8s import ObjectMeta, Pod, PodSpec, Container
from tests.conftest import make_deployment, make_pod, make_service


def make_pinned_pod(node_name: str) -> Pod:
    return Pod(
        metadata=ObjectMeta(name="pinned", namespace="default"),
        spec=PodSpec(containers=[Container(name="c", image="example/pod")], node_name=node_name),
    )


class TestSpecificErrors:
    def test_ipam_pool_exhaustion_raises_ipam_error(self):
        pool = AddressPool("10.0.0.0/30")  # network + reserved + 1 usable
        pool.allocate("pod-a")
        with pytest.raises(IPAMError, match="exhausted"):
            pool.allocate("pod-b")
        # The specific subclass, catchable as the base class too.
        with pytest.raises(ClusterError):
            pool.allocate("pod-c")

    def test_unschedulable_pod_raises_scheduling_error(self):
        cluster = Cluster(name="errs", worker_count=0)  # control plane only
        with pytest.raises(SchedulingError, match="no schedulable node"):
            cluster.install([make_pod("stranded")], app_name="stranded")

    def test_unknown_node_name_raises_scheduling_error(self):
        cluster = Cluster(name="errs", worker_count=2)
        with pytest.raises(SchedulingError, match="unknown node"):
            cluster.install([make_pinned_pod("no-such-node")], app_name="pinned")

    def test_duplicate_object_raises_already_exists(self):
        cluster = Cluster(name="errs", worker_count=2)
        cluster.api.apply(make_service("dup"), replace=False)
        with pytest.raises(AlreadyExistsError, match="dup"):
            cluster.api.apply(make_service("dup"), replace=False)

    def test_duplicate_application_raises_cluster_error(self):
        cluster = Cluster(name="errs", worker_count=2)
        cluster.install([make_deployment()], app_name="web")
        with pytest.raises(ClusterError, match="already installed"):
            cluster.install([make_deployment()], app_name="web")


def _running_twin(name: str, ip: str) -> RunningPod:
    pod = Pod(
        metadata=ObjectMeta(name=name, namespace="default"),
        spec=PodSpec(containers=[Container(name="c", image="example/pod")]),
    )
    return RunningPod(
        pod=pod,
        ip=ip,
        node=Node(name="errs-node"),
        sockets=[Socket(port=8080, protocol="TCP", container="c")],
    )


class TestDuplicatePodIdentity:
    """``all_pairs`` refuses snapshots with a duplicated (namespace, name).

    The result dict is keyed on that identity; a duplicate would silently
    overwrite the first pod's surface, so the matrix raises the specific
    :class:`DuplicatePodError` instead -- on the vectorized and the grouped
    reference path alike.
    """

    def _pods(self):
        return [
            _running_twin("web-0", "10.0.0.1"),
            _running_twin("other", "10.0.0.2"),
            _running_twin("web-0", "10.0.0.3"),  # identity collision
        ]

    @pytest.mark.parametrize("vectorized", (True, False))
    def test_all_pairs_raises_duplicate_pod_error(self, vectorized):
        network = ClusterNetwork(enforcer=NetworkPolicyEnforcer({}))
        matrix = network.reachability_matrix(
            [], self._pods(), [], vectorized=vectorized
        )
        with pytest.raises(DuplicatePodError, match="default/web-0") as excinfo:
            matrix.all_pairs()
        assert excinfo.value.name == "web-0"
        assert excinfo.value.namespace == "default"
        # The specific subclass is still catchable as the base class.
        with pytest.raises(ClusterError):
            matrix.all_pairs()

    def test_per_source_queries_still_work_on_duplicate_snapshot(self):
        # Only the keyed all-pairs result refuses; per-source surfaces stay
        # answerable, and the vectorized path matches the grouped reference
        # even on the invalid snapshot (self-exclusion keys on identity, so
        # each twin treats the other as itself).
        pods = self._pods()
        network = ClusterNetwork(enforcer=NetworkPolicyEnforcer({}))
        grouped = network.reachability_matrix([], pods, [], vectorized=False)
        vector = network.reachability_matrix([], pods, [])
        for pod in pods:
            assert vector.endpoints_from(pod) == grouped.endpoints_from(pod)
        assert [e.name for e in vector.endpoints_from(pods[1])] == ["web-0", "web-0"]
        assert [e.name for e in vector.endpoints_from(pods[0])] == ["other"]

    def test_unique_identities_do_not_raise(self):
        pods = [_running_twin("web-0", "10.0.0.1"), _running_twin("web-1", "10.0.0.2")]
        network = ClusterNetwork(enforcer=NetworkPolicyEnforcer({}))
        surfaces = network.reachability_matrix([], pods, []).all_pairs()
        assert set(surfaces) == {("default", "web-0"), ("default", "web-1")}


class TestPickling:
    def test_every_subclass_roundtrips_verbatim(self):
        errors = [
            ClusterError("plain"),
            AdmissionError("denied", reason="Invalid"),
            AlreadyExistsError("Service default/web already exists"),
            NotFoundError("Pod default/missing not found"),
            PodNotFound("web-0", namespace="prod"),
            DuplicatePodError("web-0", namespace="prod"),
            SchedulingError("no schedulable node available for pod 'web-0'"),
            IPAMError("address pool 10.244.0.0/16 exhausted"),
        ]
        for error in errors:
            clone = pickle.loads(pickle.dumps(error))
            assert type(clone) is type(error)
            assert clone.args == error.args
            assert str(clone) == str(error)
        admission = pickle.loads(pickle.dumps(errors[1]))
        assert admission.reason == "Invalid"
        pod_missing = pickle.loads(pickle.dumps(errors[4]))
        assert (pod_missing.name, pod_missing.namespace) == ("web-0", "prod")

    def test_chart_context_survives_pickle(self):
        error = PodNotFound("web-0").with_context("CNCF/cert-manager")
        clone = pickle.loads(pickle.dumps(error))
        assert str(clone) == "[CNCF/cert-manager] pod default/web-0 is not running"
        assert clone.name == "web-0"


class TestActionableMessages:
    def test_each_class_gets_specific_guidance(self):
        assert "worker" in actionable_message(SchedulingError("no node")).lower()
        assert "replica" in actionable_message(IPAMError("exhausted")).lower()
        assert "behaviors" in actionable_message(PodNotFound("web-0")).lower()
        assert "admission" in actionable_message(AdmissionError("denied")).lower()
        assert "release" in actionable_message(AlreadyExistsError("dup")).lower()

    def test_message_leads_with_type_and_original_text(self):
        message = actionable_message(IPAMError("address pool 10.0.0.0/30 exhausted"))
        assert message.startswith("IPAMError: address pool 10.0.0.0/30 exhausted")


class TestPooledClusterReusableAfterError:
    def test_reset_recovers_from_scheduling_error(self):
        session = AnalysisSession(name="errs", worker_count=2)
        cluster = session.acquire()
        with pytest.raises(SchedulingError):
            cluster.install([make_pinned_pod("no-such-node")], app_name="broken")
        session.release(cluster)
        # The recycled skeleton behaves like a fresh one.
        recycled = session.acquire()
        assert recycled is cluster
        recycled.install([make_deployment(replicas=2), make_service()], app_name="web")
        assert len(recycled.running_pods(app_name="web")) == 2
        fresh = Cluster(name="errs", worker_count=2)
        fresh.install([make_deployment(replicas=2), make_service()], app_name="web")
        assert sorted(p.name for p in recycled.running_pods()) == sorted(
            p.name for p in fresh.running_pods()
        )

    def test_reset_recovers_from_duplicate_admission(self):
        session = AnalysisSession(name="errs", worker_count=2)
        cluster = session.acquire()
        cluster.api.apply(make_service("dup"), replace=False)
        with pytest.raises(AlreadyExistsError):
            cluster.api.apply(make_service("dup"), replace=False)
        session.release(cluster)
        recycled = session.acquire()
        assert recycled is cluster
        # The store is empty again: the same apply succeeds.
        recycled.api.apply(make_service("dup"), replace=False)
        assert recycled.api.store.exists("Service", "dup", "default")

    def test_reset_recovers_from_ipam_exhaustion(self):
        session = AnalysisSession(name="errs", worker_count=2)
        cluster = session.acquire()
        # Exhaust the pod pool artificially, then fail an install.
        pool = cluster.ipam.pods
        pool._next_index = pool._max_index
        with pytest.raises(IPAMError):
            cluster.install([make_deployment(replicas=2)], app_name="web")
        session.release(cluster)
        recycled = session.acquire()
        assert recycled is cluster
        recycled.install([make_deployment(replicas=2)], app_name="web")
        assert len(recycled.running_pods(app_name="web")) == 2
