"""Unit tests for the CNI enforcement, endpoint controller, DNS, connectivity
engine and the cluster facade."""

import pytest

from repro.cluster import (
    BehaviorRegistry,
    Cluster,
    ClusterError,
    ContainerBehavior,
    EndpointController,
    ListenSpec,
    NetworkPolicyEnforcer,
    behavior_with_dynamic_ports,
)
from repro.k8s import (
    NetworkPolicyPeer,
    NetworkPolicyPort,
    NetworkPolicyRule,
    Selector,
    allow_ports_policy,
    deny_all_policy,
    equality_selector,
)
from tests.conftest import make_deployment, make_pod, make_service


@pytest.fixture
def basic_cluster():
    """A cluster with a two-replica web deployment, a service, an attacker pod."""
    registry = BehaviorRegistry()
    registry.register(
        "example/web",
        ContainerBehavior(listen_on_declared=True, extra_listens=[ListenSpec(port=9999)]),
    )
    cluster = Cluster(name="net-test", worker_count=2, behaviors=registry, seed=11)
    cluster.install(
        [make_deployment(replicas=2), make_service(), make_pod("attacker")], app_name="web"
    )
    return cluster


class TestEndpointController:
    def test_binding_matches_selector(self, basic_cluster):
        controller = EndpointController()
        bindings = controller.bind(basic_cluster.services(), basic_cluster.running_pods())
        web_binding = next(b for b in bindings if b.service.name == "web")
        assert {backend.name for backend in web_binding.backends} == {"web-0", "web-1"}

    def test_services_without_backends(self, basic_cluster):
        controller = EndpointController()
        orphan = make_service("orphan", selector={"app": "nothing"})
        basic_cluster.api.apply(orphan)
        missing = controller.services_without_backends(
            basic_cluster.services(), basic_cluster.running_pods()
        )
        assert [service.name for service in missing] == ["orphan"]

    def test_resolved_target_ports(self, basic_cluster):
        binding = basic_cluster.binding_for("web")
        assert binding.resolved_target_ports() == {80: [8080, 8080]}

    def test_endpoints_object_generation(self, basic_cluster):
        binding = basic_cluster.binding_for("web")
        endpoints = binding.to_endpoints()
        assert endpoints.name == "web"
        assert len(endpoints.addresses) == 2


class TestClusterDNS:
    def test_cluster_ip_service_resolution(self, basic_cluster):
        basic_cluster.reconcile()
        record = basic_cluster.dns.resolve("web")
        assert record.resolvable
        assert record.fqdn == "web.default.svc.cluster.local"
        assert not record.headless

    def test_headless_service_resolves_to_pod_ips(self, basic_cluster):
        headless = make_service("web-headless", headless=True)
        basic_cluster.api.apply(headless)
        basic_cluster.reconcile()
        record = basic_cluster.dns.resolve("web-headless")
        assert record.headless
        assert len(record.addresses) == 2

    def test_unknown_service_is_not_resolvable(self, basic_cluster):
        basic_cluster.reconcile()
        assert not basic_cluster.dns.resolve("missing").resolvable

    def test_namespaced_name_resolution(self, basic_cluster):
        basic_cluster.reconcile()
        assert basic_cluster.dns.resolve("web.default.svc.cluster.local").resolvable


class TestPolicyEnforcement:
    def test_default_allow_without_policies(self, basic_cluster):
        attacker = basic_cluster.running_pod("attacker")
        web = basic_cluster.running_pod("web-0")
        assert basic_cluster.connect(attacker, web, 8080).success

    def test_deny_all_blocks_traffic(self, basic_cluster):
        basic_cluster.api.apply(deny_all_policy("deny"))
        attacker = basic_cluster.running_pod("attacker")
        web = basic_cluster.running_pod("web-0")
        attempt = basic_cluster.connect(attacker, web, 8080)
        assert not attempt.success
        assert "denied" in attempt.reason

    def test_allow_specific_port(self, basic_cluster):
        basic_cluster.api.apply(allow_ports_policy("allow-http", equality_selector(app="web"), [8080]))
        attacker = basic_cluster.running_pod("attacker")
        web = basic_cluster.running_pod("web-0")
        assert basic_cluster.connect(attacker, web, 8080).success
        assert not basic_cluster.connect(attacker, web, 9999).success

    def test_connection_refused_when_not_listening(self, basic_cluster):
        attacker = basic_cluster.running_pod("attacker")
        web = basic_cluster.running_pod("web-0")
        attempt = basic_cluster.connect(attacker, web, 5555)
        assert not attempt.success
        assert "refused" in attempt.reason

    def test_host_network_pod_escapes_policies(self):
        registry = BehaviorRegistry()
        cluster = Cluster(name="host-net", worker_count=1, behaviors=registry, seed=3)
        deployment = make_deployment("agent", ports=[9100], host_network=True,
                                     labels={"app": "agent"})
        cluster.install([deployment, make_pod("attacker")], app_name="agent")
        cluster.api.apply(deny_all_policy("deny"))
        attacker = cluster.running_pod("attacker")
        agent = cluster.running_pod("agent-0")
        attempt = cluster.connect(attacker, agent, 9100)
        assert attempt.success
        assert "host network" in attempt.reason

    def test_enforcer_isolated_and_unprotected_pods(self, basic_cluster):
        policies = [allow_ports_policy("allow", equality_selector(app="web"), [8080])]
        enforcer: NetworkPolicyEnforcer = basic_cluster.enforcer
        pods = basic_cluster.running_pods()
        isolated = enforcer.isolated_pods(policies, pods)
        unprotected = enforcer.unprotected_pods(policies, pods)
        assert {pod.name for pod in isolated} == {"web-0", "web-1"}
        assert "attacker" in {pod.name for pod in unprotected}

    def test_named_port_in_policy(self, basic_cluster):
        rule = NetworkPolicyRule(peers=[NetworkPolicyPeer(pod_selector=Selector())],
                                 ports=[NetworkPolicyPort(port="main")])
        policy = deny_all_policy("allow-named")
        policy.pod_selector = equality_selector(app="web")
        policy.ingress = [rule]
        basic_cluster.api.apply(policy)
        attacker = basic_cluster.running_pod("attacker")
        web = basic_cluster.running_pod("web-0")
        # The declared port 8080 is named "main"? It is not, so the named port
        # cannot be resolved and the connection is denied.
        assert not basic_cluster.connect(attacker, web, 8080).success


class TestServiceConnectivity:
    def test_connect_through_service(self, basic_cluster):
        attacker = basic_cluster.running_pod("attacker")
        attempt = basic_cluster.connect(attacker, "web", 80)
        assert attempt.success
        assert attempt.via_service == "web"
        assert attempt.backend_pod.startswith("web-")

    def test_service_port_not_exposed(self, basic_cluster):
        attacker = basic_cluster.running_pod("attacker")
        assert not basic_cluster.connect(attacker, "web", 8443).success

    def test_service_without_backends_fails(self, basic_cluster):
        basic_cluster.api.apply(make_service("orphan", selector={"app": "none"}))
        attacker = basic_cluster.running_pod("attacker")
        attempt = basic_cluster.connect(attacker, "orphan", 80)
        assert not attempt.success
        assert "no endpoints" in attempt.reason

    def test_backends_receiving_traffic_includes_impersonator(self, basic_cluster):
        impersonator = make_pod("impersonator", labels={"app": "web"}, ports=[8080],
                                image="example/web")
        basic_cluster.install([impersonator], app_name="impersonation")
        attacker = basic_cluster.running_pod("attacker")
        binding = basic_cluster.binding_for("web")
        receiving = basic_cluster.network.service_backends_receiving(
            basic_cluster.network_policies(), attacker, binding, 80
        )
        assert "impersonator" in {pod.name for pod in receiving}

    def test_reachable_endpoints_surface(self, basic_cluster):
        attacker = basic_cluster.running_pod("attacker")
        endpoints = basic_cluster.reachable_from(attacker)
        pod_ports = {(e.name, e.port) for e in endpoints if e.kind == "pod"}
        service_ports = {(e.name, e.port) for e in endpoints if e.kind == "service"}
        assert ("web-0", 8080) in pod_ports
        assert ("web-0", 9999) in pod_ports
        assert ("web", 80) in service_ports

    def test_reachable_endpoints_respect_policies(self, basic_cluster):
        basic_cluster.api.apply(allow_ports_policy("allow", equality_selector(app="web"), [8080]))
        attacker = basic_cluster.running_pod("attacker")
        endpoints = basic_cluster.reachable_from(attacker)
        pod_ports = {(e.name, e.port) for e in endpoints if e.kind == "pod"}
        assert ("web-0", 8080) in pod_ports
        assert ("web-0", 9999) not in pod_ports


class TestClusterLifecycle:
    def test_install_requires_app_name_for_plain_objects(self, small_cluster):
        with pytest.raises(ClusterError):
            small_cluster.install([make_pod("a")])

    def test_double_install_rejected(self, small_cluster):
        small_cluster.install([make_pod("a")], app_name="app")
        with pytest.raises(ClusterError):
            small_cluster.install([make_pod("b")], app_name="app")

    def test_uninstall_removes_pods_and_objects(self, basic_cluster):
        basic_cluster.uninstall("web")
        assert basic_cluster.running_pods() == []
        assert basic_cluster.services() == []

    def test_uninstall_unknown_app_raises(self, small_cluster):
        with pytest.raises(ClusterError):
            small_cluster.uninstall("ghost")

    def test_daemonset_expands_to_one_pod_per_worker(self, small_cluster):
        from repro.k8s import DaemonSet

        deployment = make_deployment("agent", labels={"app": "agent"})
        daemonset = DaemonSet(
            metadata=deployment.metadata,
            selector=deployment.selector,
            template=deployment.template,
        )
        small_cluster.install([daemonset], app_name="agents")
        assert len(small_cluster.running_pods(app_name="agents")) == 2

    def test_restart_application_changes_dynamic_ports(self):
        registry = BehaviorRegistry()
        registry.register("example/web", behavior_with_dynamic_ports(1))
        cluster = Cluster(name="restart", worker_count=1, behaviors=registry, seed=5)
        cluster.install([make_deployment()], app_name="web")
        before = cluster.running_pod("web-0").listening_ports() - {8080}
        cluster.restart_application("web")
        after = cluster.running_pod("web-0").listening_ports() - {8080}
        assert before != after

    def test_host_port_baseline_contains_node_services(self, small_cluster):
        baseline = small_cluster.host_port_baseline()
        assert 22 in baseline
        assert 10250 in baseline

    def test_owner_is_recorded_on_running_pods(self, basic_cluster):
        pod = basic_cluster.running_pod("web-0")
        assert pod.owner == "Deployment/default/web"

    def test_running_pods_filter_by_app(self, basic_cluster):
        assert {p.name for p in basic_cluster.running_pods(app_name="web")} == {
            "web-0", "web-1", "attacker",
        }
