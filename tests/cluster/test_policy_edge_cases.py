"""Pinned compiled-vs-naive regressions for the engine's trickiest cases.

The class-grouped :class:`ReachabilityMatrix` (PR 2) and the compiled policy
index (PR 1) special-case three behaviours that the property tests only hit
probabilistically.  These tests pin each one explicitly, always asserting
both the concrete expected outcome *and* compiled == naive equality:

* **self-exclusion** -- a pod shares its class surface with its replicas but
  must never appear in its own lateral-movement surface;
* **loopback-via-service ``same_pod``** -- a service backend listening only
  on ``127.0.0.1`` is reachable through the service solely by itself;
* **named ports after restart** -- policies referencing named ports must
  resolve correctly after a restart replaces every socket list (the
  named-port memo survives, the socket memo must not).
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    BehaviorRegistry,
    Cluster,
    ContainerBehavior,
    ListenSpec,
    LOOPBACK,
)
from repro.k8s import ContainerPort, NetworkPolicyPort, Selector, allow_ports_policy
from tests.conftest import make_deployment, make_pod, make_service


def both_engines(behaviors=None):
    """A (compiled, naive) cluster pair built identically."""
    return (
        Cluster(name="edge", worker_count=2, behaviors=behaviors, seed=3,
                compiled_policies=True),
        Cluster(name="edge", worker_count=2, behaviors=behaviors, seed=3,
                compiled_policies=False),
    )


def surface(cluster: Cluster, pod_name: str):
    source = cluster.running_pod(pod_name)
    return [
        (e.kind, e.namespace, e.name, e.port, e.protocol)
        for e in cluster.reachable_from(source)
    ]


class TestSelfExclusion:
    def install(self, cluster: Cluster) -> None:
        cluster.install(
            [make_deployment(name="web", replicas=3, ports=[8080]), make_service()],
            app_name="web",
        )

    def test_replicas_share_a_class_but_exclude_themselves(self):
        compiled, naive = both_engines()
        self.install(compiled)
        self.install(naive)
        for pod_index in range(3):
            pod_name = f"web-{pod_index}"
            compiled_surface = surface(compiled, pod_name)
            assert compiled_surface == surface(naive, pod_name)
            reachable_pods = {
                name for kind, _, name, _, _ in compiled_surface if kind == "pod"
            }
            # Both sibling replicas, never the source itself.
            assert reachable_pods == {f"web-{i}" for i in range(3)} - {pod_name}

    def test_self_exclusion_survives_isolation_policies(self):
        compiled, naive = both_engines()
        for cluster in (compiled, naive):
            self.install(cluster)
            cluster.api.apply(
                allow_ports_policy(
                    "allow-web", Selector(match_labels={"app": "web"}), [8080]
                )
            )
        for pod_name in ("web-0", "web-1"):
            compiled_surface = surface(compiled, pod_name)
            assert compiled_surface == surface(naive, pod_name)
            assert (("pod", "default", pod_name, 8080, "TCP")) not in compiled_surface


class TestLoopbackViaService:
    ADMIN_PORT = 9100

    def behaviors(self) -> BehaviorRegistry:
        registry = BehaviorRegistry()
        registry.register(
            "example/web",
            ContainerBehavior(
                listen_on_declared=True,
                extra_listens=[ListenSpec(port=self.ADMIN_PORT, interface=LOOPBACK)],
            ),
        )
        return registry

    def install(self, cluster: Cluster) -> None:
        cluster.install(
            [
                make_deployment(name="web", replicas=2, ports=[8080]),
                make_service(name="admin", port=9100, target_port=self.ADMIN_PORT),
                make_pod("attacker"),
            ],
            app_name="web",
        )

    def test_loopback_backends_reachable_only_by_themselves(self):
        compiled, naive = both_engines(self.behaviors())
        self.install(compiled)
        self.install(naive)
        admin_endpoint = ("service", "default", "admin", 9100, "TCP")
        # Every backend reaches the admin service -- the service hop lands on
        # the pod's *own* loopback socket (the same_pod case).  This holds
        # per member even though both replicas share one policy-equivalence
        # class, which is exactly what the per-member surface filter handles.
        for backend in ("web-0", "web-1"):
            backend_surface = surface(compiled, backend)
            assert backend_surface == surface(naive, backend)
            assert admin_endpoint in backend_surface
        # A pod that is not a backend never reaches it.
        attacker_surface = surface(compiled, "attacker")
        assert attacker_surface == surface(naive, "attacker")
        assert admin_endpoint not in attacker_surface

    def test_direct_loopback_connection_refused_for_others(self):
        compiled, naive = both_engines(self.behaviors())
        self.install(compiled)
        self.install(naive)
        for cluster in (compiled, naive):
            attacker = cluster.running_pod("attacker")
            backend = cluster.running_pod("web-0")
            direct = cluster.connect(attacker, backend, self.ADMIN_PORT)
            assert not direct.success
            assert "loopback" in direct.reason
            self_attempt = cluster.connect(backend, backend, self.ADMIN_PORT)
            assert self_attempt.success


class TestNamedPortsAfterRestart:
    def behaviors(self) -> BehaviorRegistry:
        registry = BehaviorRegistry()
        registry.register(
            "example/web",
            ContainerBehavior(
                listen_on_declared=True, extra_listens=[ListenSpec(port=None)]
            ),
        )
        return registry

    def named_port_policy(self):
        policy = allow_ports_policy(
            "allow-named", Selector(match_labels={"app": "web"}), []
        )
        policy.ingress[0].ports = [NetworkPolicyPort(port="main")]
        return policy

    def install(self, cluster: Cluster) -> None:
        deployment = make_deployment(name="web", replicas=1, ports=[8080])
        container = deployment.template.spec.containers[0]
        container.ports[0] = ContainerPort(8080, name="main")
        cluster.install(
            [deployment, make_pod("attacker"), self.named_port_policy()],
            app_name="web",
        )

    def test_named_port_decisions_survive_restart(self):
        compiled, naive = both_engines(self.behaviors())
        self.install(compiled)
        self.install(naive)

        def check(cluster: Cluster) -> tuple[bool, set[int]]:
            attacker = cluster.running_pod("attacker")
            web = cluster.running_pod("web-0")
            allowed = cluster.connect(attacker, web, 8080).success
            dynamic = {s.port for s in web.sockets if s.dynamic}
            # Dynamic ports are not covered by the named-port rule.
            for port in dynamic:
                assert not cluster.connect(attacker, web, port).success
            return allowed, dynamic

        # Before the restart: the named port resolves and admits traffic.
        before_compiled = check(compiled)
        before_naive = check(naive)
        assert before_compiled[0] is True
        assert before_compiled == before_naive

        compiled.restart_all()
        naive.restart_all()

        after_compiled = check(compiled)
        after_naive = check(naive)
        assert after_compiled[0] is True
        assert after_compiled == after_naive
        # The restart re-allocated the dynamic ports (socket memo refreshed)...
        assert after_compiled[1] != before_compiled[1]
        # ...while the named-port resolution still pins 8080 open.
        web = compiled.running_pod("web-0")
        assert web.named_ports() == {"main": 8080}
