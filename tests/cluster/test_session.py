"""Unit tests for AnalysisSession, ObservationSubstrate and Cluster.reset."""

import pytest

from repro.cluster import (
    AnalysisSession,
    BehaviorRegistry,
    Cluster,
    ContainerBehavior,
    ListenSpec,
    OBSERVE_FAST,
    OBSERVE_FULL,
    ObservationSubstrate,
)
from repro.helm import render_chart
from repro.k8s import ValidationError
from tests.conftest import make_deployment, make_pod, make_service


def registry_with_extras() -> BehaviorRegistry:
    registry = BehaviorRegistry()
    registry.register(
        "example/web",
        ContainerBehavior(listen_on_declared=True, extra_listens=[ListenSpec(port=9999)]),
    )
    return registry


def install_fixture(cluster: Cluster) -> None:
    cluster.install(
        [make_deployment(replicas=2), make_service(), make_pod("attacker")],
        app_name="web",
    )


class TestClusterReset:
    def test_reset_restores_as_constructed_state(self):
        cluster = Cluster(name="pool", worker_count=2, seed=11)
        install_fixture(cluster)
        assert cluster.running_pods()
        cluster.reset()
        assert cluster.running_pods() == []
        assert cluster.applications() == []
        assert cluster.services() == []
        assert cluster.network_policies() == []
        assert cluster.session_epoch == 1
        # Nodes are recycled, not rebuilt: same names, same deterministic IPs.
        fresh = Cluster(name="pool", worker_count=2, seed=11)
        assert [n.name for n in cluster.nodes] == [n.name for n in fresh.nodes]
        assert [n.ip for n in cluster.nodes] == [n.ip for n in fresh.nodes]
        assert all(not n.pod_names for n in cluster.nodes)
        # Namespace defaults are back.
        assert cluster.api.store.exists("Namespace", "default", "")
        assert cluster.api.store.exists("Namespace", "kube-system", "")

    def test_reset_moves_policy_epoch_strictly_forward(self):
        cluster = Cluster(name="pool", worker_count=2)
        install_fixture(cluster)
        index_before = cluster.policy_index()
        epoch_before = cluster.policy_epoch
        cluster.reset()
        assert cluster.policy_epoch > epoch_before
        # Epoch-keyed caches rebuild instead of serving stale state.
        assert cluster.policy_index() is not index_before
        assert cluster.service_bindings() == []

    def test_reset_replays_identical_ephemeral_ports(self):
        behaviors = BehaviorRegistry()
        behaviors.register(
            "example/web",
            ContainerBehavior(listen_on_declared=True, extra_listens=[ListenSpec(port=None)]),
        )
        recycled = Cluster(name="pool", worker_count=2, behaviors=behaviors, seed=7)
        install_fixture(recycled)
        recycled.reset(behaviors=behaviors, seed=7)
        install_fixture(recycled)
        fresh = Cluster(name="pool", worker_count=2, behaviors=behaviors, seed=7)
        install_fixture(fresh)
        recycled_ports = sorted(
            (p.name, sorted(s.port for s in p.sockets)) for p in recycled.running_pods()
        )
        fresh_ports = sorted(
            (p.name, sorted(s.port for s in p.sockets)) for p in fresh.running_pods()
        )
        assert recycled_ports == fresh_ports

    def test_reset_swaps_behaviors_and_drops_admission_controllers(self):
        cluster = Cluster(name="pool", worker_count=2)

        class Rejecting:
            name = "reject-all"

            def review(self, obj, store):  # pragma: no cover - never invoked
                raise AssertionError("should have been dropped by reset")

        cluster.register_admission_controller(Rejecting())
        replacement = registry_with_extras()
        cluster.reset(behaviors=replacement)
        assert cluster.behaviors is replacement
        assert cluster.runtime.behaviors is replacement
        assert cluster.api.admission_controllers == []
        install_fixture(cluster)
        web = cluster.running_pods(app_name="web")
        assert any(s.port == 9999 for p in web for s in p.sockets)


class TestAnalysisSessionPool:
    def test_lease_recycles_one_skeleton(self):
        session = AnalysisSession(name="pool", worker_count=2, observe_mode=OBSERVE_FULL)
        with session.lease() as first:
            install_fixture(first)
        with session.lease() as second:
            assert second is first
            assert second.running_pods() == []
        assert session.stats.clusters_built == 1
        assert session.stats.resets == 1
        assert session.stats.leases == 2

    def test_unpooled_session_builds_fresh_clusters(self):
        session = AnalysisSession(observe_mode=OBSERVE_FULL, pooled=False)
        with session.lease() as first:
            pass
        with session.lease() as second:
            assert second is not first
        assert session.stats.clusters_built == 2
        assert session.stats.resets == 0

    def test_custom_factory_disables_pooling_and_fast_mode(self):
        built = []

        def factory(behaviors):
            cluster = Cluster(name="custom", worker_count=1, behaviors=behaviors)
            built.append(cluster)
            return cluster

        session = AnalysisSession(observe_mode=OBSERVE_FAST, cluster_factory=factory)
        assert session.observe_mode == OBSERVE_FULL
        assert not session.pooled
        with session.lease() as first:
            assert first is built[-1]
        with session.lease() as second:
            assert second is built[-1]
        assert second is not first

    def test_unknown_observe_mode_rejected(self):
        with pytest.raises(ValueError, match="observe_mode"):
            AnalysisSession(observe_mode="bogus")


class TestObservationSubstrate:
    def _rendered(self, chart):
        return render_chart(chart, release_name="rel")

    def test_single_snapshot_mode_reuses_first(self, simple_chart):
        session = AnalysisSession(worker_count=2)
        observation = session.observe(
            self._rendered(simple_chart), double_snapshot=False
        )
        assert observation.second is observation.first

    def test_host_port_baseline_is_copied_out(self):
        substrate = ObservationSubstrate(worker_count=2)
        baseline = substrate.host_port_baseline()
        baseline.add(65000)
        assert 65000 not in substrate.host_port_baseline()

    def test_validation_errors_match_the_install_path(self, simple_chart):
        rendered = self._rendered(simple_chart)
        # A service declaring the same port twice fails validation on install;
        # the fast path must fail identically.
        bad = make_service()
        bad.ports.append(bad.ports[0])
        rendered.objects.append(bad)
        with pytest.raises(ValidationError) as fast_error:
            AnalysisSession(worker_count=2).observe(rendered)
        rendered_again = self._rendered(simple_chart)
        rendered_again.objects.append(bad)
        cluster = Cluster(name="analysis", worker_count=2)
        with pytest.raises(ValidationError) as full_error:
            cluster.install(rendered_again)
        assert str(fast_error.value) == str(full_error.value)

    def test_substrate_nodes_mirror_cluster_nodes(self):
        substrate = ObservationSubstrate(name="analysis", worker_count=3)
        cluster = Cluster(name="analysis", worker_count=3)
        assert [n.name for n in substrate.nodes] == [n.name for n in cluster.nodes]
        assert substrate.host_port_baseline() == cluster.host_port_baseline()

    def test_dynamic_socket_deduplicated_by_static_port_still_restarts(self):
        """The skip-restart decision keys on RNG draws, not surviving sockets.

        A static declared port that collides with the first ephemeral draw
        makes the runtime deduplicate the dynamic socket away -- but the
        draw happened, so the full path's restart redraws and the fast path
        must too, or second snapshots (and every later draw) diverge.
        """
        import random

        from repro.k8s import EPHEMERAL_PORT_RANGE

        seed = 7
        collision_port = random.Random(seed).randint(*EPHEMERAL_PORT_RANGE)
        behaviors = BehaviorRegistry()
        behaviors.register(
            "example/web",
            ContainerBehavior(listen_on_declared=True, extra_listens=[ListenSpec(port=None)]),
        )
        objects = [make_deployment(name="web", replicas=1, ports=[collision_port])]

        fresh = Cluster(name="analysis", worker_count=3, behaviors=behaviors, seed=seed)
        fresh.install(list(objects), app_name="web")
        # The collision actually happened: no surviving dynamic socket.
        assert not any(s.dynamic for s in fresh.running_pod("web-0").sockets)
        from repro.probe import RuntimeScanner

        reference = RuntimeScanner(fresh).observe("web")

        from repro.helm import Chart, ReleaseInfo, RenderedChart

        rendered = RenderedChart(
            chart=Chart.from_files("web"),
            release=ReleaseInfo(name="web"),
            values={},
            objects=list(objects),
        )
        session = AnalysisSession(worker_count=3, seed=seed)
        fast = session.observe(rendered, behaviors)
        assert fast.first.to_dict() == reference.first.to_dict()
        assert fast.second.to_dict() == reference.second.to_dict()
