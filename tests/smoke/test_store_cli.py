"""CLI smoke: ``insidejob sweep`` degrades gracefully on a damaged store.

The contract under test mirrors ``actionable_message`` for cluster errors:
a corrupt or version-skewed store must never surface as a traceback or a
non-zero exit -- the sweep recomputes the affected charts, prints its
normal report, and emits exactly one ``StoreIntegrity`` hint on stderr
pointing at ``tools/store_gc.py``.  Resume runs through the same door.
"""

from __future__ import annotations

import pytest

from repro.cli import main as cli_main
from repro.store import ResultStore

SAMPLE = 4


def run_sweep(capsys, *argv: str) -> tuple[int, str, str]:
    code = cli_main(["sweep", "--sample", str(SAMPLE), *argv])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_sweep_without_store(capsys):
    code, out, err = run_sweep(capsys)
    assert code == 0
    assert "Total" in out
    assert "store:" not in out  # no store armed -> no store accounting


def test_sweep_cold_then_warm(capsys, tmp_path):
    store_dir = str(tmp_path / "store")
    code, out, _ = run_sweep(capsys, "--store", store_dir)
    assert code == 0
    assert f"store: 0 loaded, {SAMPLE} computed" in out
    code, out, err = run_sweep(capsys, "--store", store_dir)
    assert code == 0
    assert f"store: {SAMPLE} loaded, 0 computed" in out
    assert "StoreIntegrity" not in err  # healthy store stays silent


def test_sweep_resume_continues_quietly(capsys, tmp_path):
    store_dir = str(tmp_path / "store")
    run_sweep(capsys, "--store", store_dir)
    code, out, err = run_sweep(capsys, "--resume", store_dir)
    assert code == 0
    assert f"store: {SAMPLE} loaded, 0 computed" in out


@pytest.mark.parametrize("damage", ["truncate", "garbage"])
def test_sweep_over_corrupt_store_hints_and_recomputes(capsys, tmp_path, damage):
    store_dir = tmp_path / "store"
    run_sweep(capsys, "--store", str(store_dir))
    # Damage every entry on disk: a torn write and outright garbage both
    # must be detected by the verified read, never unpickled or served.
    for path in ResultStore(store_dir).entries():
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2] if damage == "truncate" else b"\x00junk")
    code, out, err = run_sweep(capsys, "--store", str(store_dir))
    assert code == 0  # never a traceback, never a failure
    assert "Total" in out  # the full report still prints
    assert f"store: 0 loaded, {SAMPLE} computed" in out
    assert err.count("StoreIntegrity") == 1  # exactly one actionable hint
    assert "store_gc.py" in err
    # The corrupt entries were evicted and republished: warm again.
    code, out, err = run_sweep(capsys, "--store", str(store_dir))
    assert code == 0
    assert f"store: {SAMPLE} loaded, 0 computed" in out
    assert "StoreIntegrity" not in err
