"""Smoke harness: every CLI subcommand and every example script runs.

The CLI subcommands run in-process against a tiny catalogue sample
(``--sample``), asserting exit code and non-empty, recognizable report
output.  The ``examples/*.py`` scripts run as real subprocesses -- the way a
reader would invoke them -- with ``full_evaluation.py`` pointed at a tiny
catalogue via its ``--sample`` flag.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest
import yaml

from repro.cli import main as cli_main
from repro.datasets import InjectionPlan, build_application
from repro.helm import render_chart

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = REPO_ROOT / "examples"
SRC = REPO_ROOT / "src"


@pytest.fixture
def manifests_file(tmp_path) -> Path:
    """A rendered multi-document manifest file for ``insidejob analyze``."""
    app = build_application(
        "smoke-app", "Smoke Org", InjectionPlan(m3=1, m5d=1, m6=True), archetype="web"
    )
    rendered = render_chart(app.chart)
    path = tmp_path / "manifests.yaml"
    path.write_text(yaml.safe_dump_all(rendered.documents), encoding="utf-8")
    return path


class TestCLI:
    def run_cli(self, capsys, *argv: str) -> tuple[int, str]:
        code = cli_main(list(argv))
        out = capsys.readouterr().out
        assert out.strip(), f"{argv} produced no output"
        return code, out

    def test_analyze(self, capsys, manifests_file):
        code, out = self.run_cli(capsys, "analyze", str(manifests_file))
        assert code == 0
        assert "M6" in out  # no NetworkPolicy rendered -> static M6 finding

    def test_analyze_strict_exits_nonzero_on_findings(self, capsys, manifests_file):
        code, out = self.run_cli(capsys, "analyze", str(manifests_file), "--strict")
        assert code == 1

    @pytest.mark.parametrize("command", ["catalog", "table2"])
    def test_table2_commands(self, capsys, command):
        code, out = self.run_cli(capsys, command, "--sample", "6")
        assert code == 0
        assert "M1" in out and "Total" in out

    def test_figure3(self, capsys):
        code, out = self.run_cli(capsys, "figure3", "--sample", "6")
        assert code == 0
        assert "Figure 3a" in out and "Figure 3b" in out

    def test_figure4a(self, capsys):
        code, out = self.run_cli(capsys, "figure4a", "--sample", "6")
        assert code == 0

    def test_figure4b(self, capsys):
        code, out = self.run_cli(capsys, "figure4b", "--sample", "12")
        assert code == 0
        assert "Dataset" in out

    @pytest.mark.slow
    def test_table3(self, capsys):
        code, out = self.run_cli(capsys, "table3")
        assert code == 0
        assert "M1" in out

    @pytest.mark.parametrize("scenario", ["concourse", "thanos"])
    def test_attacks(self, capsys, scenario):
        code, out = self.run_cli(capsys, "attack", scenario)
        assert code == 0
        assert "succeeded" in out


@pytest.mark.slow
class TestExampleScripts:
    """Each example must exit 0 and print a non-empty, recognizable report."""

    CASES = {
        "quickstart.py": ([], "Catalogue of misconfiguration classes"),
        "audit_and_fix.py": ([], "after mitigation"),
        "compare_tools.py": ([], "Differences from the paper's Table 3"),
        "lateral_movement.py": ([], "after mitigation"),
        "full_evaluation.py": (["--sample", "8"], "total wall-clock time"),
    }

    @pytest.mark.parametrize("script", sorted(CASES))
    def test_example_runs(self, script):
        args, marker = self.CASES[script]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES / script), *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
            timeout=300,
        )
        assert completed.returncode == 0, (
            f"{script} failed:\n{completed.stdout}\n{completed.stderr}"
        )
        assert completed.stdout.strip(), f"{script} produced no output"
        assert marker in completed.stdout
