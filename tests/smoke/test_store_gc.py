"""Store GC smoke: dry run reports, ``--apply`` deletes, healthy survives.

``tools/store_gc.py`` is the cleanup path the ``StoreIntegrity`` CLI hint
points at.  The smoke test pins its contract: dry run by default (nothing
deleted), ``--apply`` prunes exactly the garbage classes (orphan temp
files, corrupt entries, version-skewed entries, age-expired entries) while
healthy current-schema entries and the sweep journal are never touched.
"""

from __future__ import annotations

import importlib.util
import os
import time
from pathlib import Path

from repro import faults
from repro.store import KIND_RESULT, ResultStore, SweepJournal, _corrupt_entry_file, store_key

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_store_gc():
    spec = importlib.util.spec_from_file_location(
        "store_gc", REPO_ROOT / "tools" / "store_gc.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def populated_store(root: Path) -> tuple[ResultStore, list[str]]:
    store = ResultStore(root)
    keys = [store_key(KIND_RESULT, "gc-smoke", index) for index in range(4)]
    for index, key in enumerate(keys):
        assert store.write(key, {"index": index}, KIND_RESULT)
    return store, keys


def test_dry_run_reports_without_deleting(tmp_path, capsys):
    store_gc = load_store_gc()
    store, keys = populated_store(tmp_path / "store")
    _corrupt_entry_file(store.entry_path(keys[0]), faults.CORRUPT_BITFLIP)
    orphan = store.root / keys[1][:2] / "dead.entry.tmp12345"
    orphan.parent.mkdir(exist_ok=True)
    orphan.write_bytes(b"torn writer leftovers")

    assert store_gc.main([str(store.root)]) == 0
    out = capsys.readouterr().out
    assert "would delete [corrupt]" in out
    assert "would delete [orphan_tmp]" in out
    # Dry run: everything is still on disk.
    assert orphan.exists()
    assert store.entry_path(keys[0]).exists()


def test_apply_prunes_garbage_keeps_healthy_and_journal(tmp_path, capsys):
    store_gc = load_store_gc()
    store, keys = populated_store(tmp_path / "store")
    journal = SweepJournal(store.root, store_key(KIND_RESULT, "gc-identity"))
    journal.begin(resume=False)
    journal.record("org/app", "ok", keys[0])
    journal.close()
    _corrupt_entry_file(store.entry_path(keys[0]), faults.CORRUPT_TRUNCATE)
    _corrupt_entry_file(store.entry_path(keys[1]), faults.CORRUPT_VERSION)
    orphan = store.root / keys[2][:2] / "dead.entry.tmp12345"
    orphan.write_bytes(b"torn writer leftovers")

    assert store_gc.main([str(store.root), "--apply"]) == 0
    out = capsys.readouterr().out
    assert "deleted [corrupt]" in out
    assert "deleted [version_skew]" in out
    assert "deleted [orphan_tmp]" in out
    assert not orphan.exists()
    assert not store.entry_path(keys[0]).exists()
    assert not store.entry_path(keys[1]).exists()
    # Healthy entries and the journal survive; the store scans clean.
    assert store.entry_path(keys[2]).exists()
    assert store.entry_path(keys[3]).exists()
    assert (store.root / SweepJournal.FILENAME).exists()
    assert ResultStore(store.root).verify_all() == {"healthy": 2, "defective": 0}


def test_max_age_prunes_stale_healthy_entries(tmp_path, capsys):
    store_gc = load_store_gc()
    store, keys = populated_store(tmp_path / "store")
    ancient = time.time() - 10 * 86400
    os.utime(store.entry_path(keys[0]), (ancient, ancient))

    assert store_gc.main([str(store.root), "--max-age-days", "7", "--apply"]) == 0
    out = capsys.readouterr().out
    assert "deleted [stale]" in out
    assert not store.entry_path(keys[0]).exists()
    assert store.entry_path(keys[1]).exists()


def test_missing_store_directory_is_a_noop(tmp_path, capsys):
    store_gc = load_store_gc()
    assert store_gc.main([str(tmp_path / "nope")]) == 0
    assert "nothing to do" in capsys.readouterr().out
