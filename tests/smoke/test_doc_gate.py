"""The documentation gate runs clean and actually detects violations.

``tools/doc_gate.py`` sits next to ``tools/coverage_gate.py`` in the
inner-loop checks: it fails on missing module docstrings anywhere under
``src/repro/**`` and on undocumented public entry points in the documented
surface (``helm/``, ``cluster/session.py``, ``core/analyzer.py``).  The
smoke test pins both directions: the tree as committed passes, and a
violation is actually caught (the gate is not vacuously green).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_doc_gate_passes_on_the_tree():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "doc_gate.py")],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stderr
    assert "ok" in result.stdout


def test_doc_gate_detects_missing_docstrings(tmp_path, monkeypatch):
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "doc_gate", REPO_ROOT / "tools" / "doc_gate.py"
    )
    doc_gate = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(doc_gate)

    package = tmp_path / "src" / "repro"
    (package / "helm").mkdir(parents=True)
    (package / "helm" / "bare.py").write_text(
        "def public_function():\n    return 1\n", encoding="utf-8"
    )
    monkeypatch.setattr(doc_gate, "PACKAGE_ROOT", package)
    assert doc_gate.main() == 1
