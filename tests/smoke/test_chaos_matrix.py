"""Chaos-matrix smoke: one injected fault per site, one fast sweep each.

A quick end-to-end sanity pass over the whole fault-site catalogue: for
every site in :data:`repro.faults.FAULT_SITES`, arm a single fault against
one chart of a small catalogue sample and check the sweep completes with the
expected verdict (quarantine for poison faults, clean heal for the inert
``corrupt`` kind).  The byte-level differential guarantees live in
``tests/experiments/test_fault_isolation.py``; this file is the cheap
always-on canary that every site stays wired into its pipeline stage.
"""

import pytest

from repro import faults
from repro.datasets import build_catalog
from repro.experiments import run_full_evaluation

SAMPLE = 6

#: site -> (fault kind, expected failure stage; None = sweep stays clean).
MATRIX = {
    faults.TEMPLATE_PARSE: ("error", "render"),
    faults.STRUCTURED_ASSEMBLE: ("error", "render"),
    faults.RENDER_CACHE_READ: ("corrupt", None),
    faults.OBSERVE: ("error", "observe"),
    faults.RULES: ("error", "rules"),
    faults.WORKER_KILL: ("kill", "worker"),
    # Store faults never fail a sweep: a corrupted entry is detected,
    # evicted and recomputed; a failed publish is counted and skipped.
    faults.STORE_READ: ("corrupt", None),
    faults.STORE_WRITE: ("error", None),
}


def _clear_render_caches() -> None:
    from repro.helm.render_cache import shared_render_cache
    from repro.helm.structured import clear_skeleton_parse_memo
    from repro.helm.template import clear_template_cache

    clear_template_cache()
    clear_skeleton_parse_memo()
    shared_render_cache().clear()


def test_matrix_covers_every_fault_site():
    assert set(MATRIX) == set(faults.FAULT_SITES)


@pytest.mark.parametrize("site", sorted(MATRIX), ids=sorted(MATRIX))
def test_single_fault_sweep_completes(site, tmp_path):
    kind, expected_stage = MATRIX[site]
    applications = build_catalog()[:SAMPLE]
    victim = f"{applications[0].dataset}/{applications[0].name}"
    _clear_render_caches()  # compile-cache hits would bypass the parse site
    store = None
    if site.startswith("store."):
        from repro.store import ResultStore

        store = ResultStore(tmp_path / "store")
        if site == faults.STORE_READ:
            # Prime the store so the injected corruption has entries to hit.
            run_full_evaluation(applications=applications, store=store)
    plan = faults.FaultPlan(
        faults.FaultSpec(site, charts=(victim,), attempts=99, kind=kind)
    )
    result = run_full_evaluation(
        applications=applications,
        workers=2 if site == faults.WORKER_KILL else None,
        fault_plan=plan,
        max_attempts=2,
        retry_backoff=0.001,
        store=store,
    )
    if expected_stage is None:
        assert not result.failed
        assert len(result.analyzed) == SAMPLE
        if site == faults.STORE_READ:
            # The victim's entries were corrupted, detected, evicted and
            # recomputed -- counted, never served, never fatal.
            assert store.stats()["corruptions"] >= 1
            assert store.stats()["evictions"] >= 1
        elif site == faults.STORE_WRITE:
            assert store.stats()["write_failures"] >= 1
    else:
        assert len(result.failed) == 1
        assert result.failed[0].unique_id == victim
        assert result.failed[0].stage == expected_stage
        assert result.failed[0].attempts == 2
        assert len(result.analyzed) == SAMPLE - 1
    # The sweep itself leaves no fault plan armed behind.
    assert faults.armed_plan() is None
