"""Delta-evaluation smoke: fast differential, gate wiring, CLI round trips.

The deep equivalence proof lives in
``tests/experiments/test_delta_evaluation.py``; this module is the
inner-loop fast path.  It pins four things end to end: a tiny delta round
is byte-identical to from-scratch, the ``--check`` no-op-ratio gate is
actually wired to numbers the delta benchmark emits (never vacuously
green), ``insidejob watch`` completes a round over an on-disk chart
directory, and ``insidejob sweep --since`` reports a delta epoch
transition over a durable store.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

from repro.cli import main as cli_main
from repro.experiments import DeltaEvaluator, run_full_evaluation
from repro.datasets import build_catalog
from repro.helm import dump_values
from tests.support.diffing import assert_identical, canonical_evaluation

REPO_ROOT = Path(__file__).resolve().parents[2]
SAMPLE = 3


def _tweaked(applications, index):
    import copy
    import dataclasses

    app = applications[index]
    values = copy.deepcopy(app.chart.values)
    values["deltaSmoke"] = True
    chart = dataclasses.replace(app.chart, values=values)
    out = list(applications)
    out[index] = dataclasses.replace(app, chart=chart)
    return out


def test_delta_round_matches_scratch():
    applications = build_catalog()[:SAMPLE]
    evaluator = DeltaEvaluator()
    evaluator.evaluate(applications)
    changed = _tweaked(applications, 0)
    incremental = evaluator.evaluate(changed)
    assert incremental.delta_stats["recomputed"] == 1
    scratch = run_full_evaluation(applications=changed)
    assert_identical(
        canonical_evaluation(incremental), canonical_evaluation(scratch), "smoke delta"
    )


def _load_run_module():
    spec = importlib.util.spec_from_file_location(
        "bench_run", REPO_ROOT / "benchmarks" / "run.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _load_delta_cases():
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        import delta_cases
    finally:
        sys.path.pop(0)
    return delta_cases


def test_delta_gate_is_wired():
    # The --check path gates the no-op delta round against the full sweep:
    # the limit exists, the remeasure sample is large enough that fixed
    # costs do not dominate, and the benchmark emits the keys the gate
    # reads -- so the gate can never be vacuously green.
    bench_run = _load_run_module()
    assert bench_run.DELTA_NOOP_RATIO_LIMIT == 0.05
    assert bench_run.DELTA_SAMPLE_FLOOR >= 60
    cases = _load_delta_cases()
    results = cases.run_delta_suite(sample=4, repeats=1)
    assert results["delta/full_sweep_s"] > 0
    assert results["delta/noop_s"] >= 0
    assert "delta/noop_ratio" in results
    assert "delta/edit4_s" in results


def _write_chart_dir(root: Path, app) -> None:
    chart_dir = root / app.name
    (chart_dir / "templates").mkdir(parents=True)
    (chart_dir / "Chart.yaml").write_text(
        dump_values(app.chart.metadata.to_dict()), encoding="utf-8"
    )
    (chart_dir / "values.yaml").write_text(
        dump_values(app.chart.values), encoding="utf-8"
    )
    for template in app.chart.templates:
        (chart_dir / "templates" / template.name).write_text(
            template.source, encoding="utf-8"
        )


def test_watch_cli_completes_a_round(capsys, tmp_path):
    for app in build_catalog()[:2]:
        _write_chart_dir(tmp_path, app)
    code = cli_main(["watch", str(tmp_path), "--rounds", "1", "--interval", "0"])
    out = capsys.readouterr().out
    assert code == 0
    assert "round 1: 2 charts (2 added)" in out


def test_sweep_since_reports_epoch_transition(capsys, tmp_path):
    store_dir = str(tmp_path / "store")
    code = cli_main(["sweep", "--sample", str(SAMPLE), "--store", store_dir])
    assert code == 0
    capsys.readouterr()
    code = cli_main(["sweep", "--sample", str(SAMPLE), "--since", store_dir])
    out = capsys.readouterr().out
    assert code == 0
    # Nothing changed, so the journal is not rotated: the epoch holds.
    assert "delta: epoch 1 -> 1" in out
    assert f"{SAMPLE} unchanged" in out
    assert f"store: {SAMPLE} loaded, 0 computed" in out
