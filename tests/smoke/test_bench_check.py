"""The benchmark regression gate runs clean and actually detects regressions.

``benchmarks/run.py --check`` executes a smoke-sized benchmark pass and
compares its per-chart end-to-end numbers against the committed
``BENCH_connectivity.json`` with a tolerance band.  The smoke test pins both
directions: the tree as committed passes the gate, and a fabricated
regression (committed numbers far better than physically possible) is
actually caught -- the gate is not vacuously green.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_run_module():
    spec = importlib.util.spec_from_file_location(
        "bench_run", REPO_ROOT / "benchmarks" / "run.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.slow
def test_bench_check_passes_on_the_tree():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "benchmarks" / "run.py"), "--check"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "--check passed" in result.stdout


def test_check_detects_regression(tmp_path):
    bench_run = _load_run_module()
    committed = tmp_path / "BENCH_connectivity.json"
    committed.write_text(
        '{"end_to_end": {"charts": 290.0, "evaluation/current_s": 1e-9, '
        '"netpol_impact/compiled_s": 1e-9, "evaluation/store_warm_s": 1e-9}}'
    )
    record = {
        "end_to_end": {
            "charts": 4.0,
            "evaluation/current_s": 0.02,
            "netpol_impact/compiled_s": 0.01,
            "evaluation/store_warm_s": 0.01,
        }
    }
    failures = bench_run.check_against_committed(record, committed, tolerance=3.0)
    assert len(failures) == len(bench_run.CHECK_KEYS)
    assert all("ms/chart exceeds" in failure for failure in failures)


def test_check_passes_within_band(tmp_path):
    bench_run = _load_run_module()
    committed = tmp_path / "BENCH_connectivity.json"
    committed.write_text(
        '{"end_to_end": {"charts": 290.0, "evaluation/current_s": 0.29, '
        '"netpol_impact/compiled_s": 0.29, "evaluation/store_warm_s": 0.29}}'
    )
    record = {
        "end_to_end": {
            "charts": 4.0,
            "evaluation/current_s": 0.008,  # 2 ms/chart vs committed 1 ms/chart
            "netpol_impact/compiled_s": 0.004,
            "evaluation/store_warm_s": 0.004,
        }
    }
    assert bench_run.check_against_committed(record, committed, tolerance=3.0) == []


def test_check_flags_missing_keys(tmp_path):
    bench_run = _load_run_module()
    committed = tmp_path / "BENCH_connectivity.json"
    committed.write_text('{"end_to_end": {"charts": 290.0}}')
    failures = bench_run.check_against_committed(
        {"end_to_end": {"charts": 4.0}}, committed, tolerance=3.0
    )
    assert len(failures) == len(bench_run.CHECK_KEYS)


def _load_cases_module():
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        import connectivity_cases
    finally:
        sys.path.pop(0)
    return connectivity_cases


def test_vectorized_gate_is_wired():
    # The --check path gates the bitset engine against the grouped walk it
    # replaced: the limit exists, and the smoke-sized bench results carry
    # the keys the gate reads (so it can never be vacuously green).
    bench_run = _load_run_module()
    assert bench_run.VECTORIZED_RATIO_LIMIT == 1.0
    cases = _load_cases_module()
    results = cases.run_size(bench_run.SMOKE_FLEET_SIZES[0], repeats=1)
    assert results["matrix_sources/grouped"] > 0
    assert results["matrix_sources/compiled"] > 0
    assert results["matrix_sources/naive"] > 0


def test_grouped_bindings_match_endpoint_controller():
    # Big fleets (> 1000 pods) bind services with the O(pods) group-by-app
    # shortcut instead of the O(services x pods) EndpointController scan.
    # Pin the equivalence just past the crossover: identical services,
    # identical backend lists, identical order.
    from repro.cluster import EndpointController

    cases = _load_cases_module()
    fleet = cases.build_fleet(1_200)
    reference = EndpointController().bind(fleet.services, fleet.pods)
    assert len(fleet.bindings) == len(reference)
    for fast, slow in zip(fleet.bindings, reference):
        assert fast.service is slow.service
        assert [b.ident for b in fast.backends] == [b.ident for b in slow.backends]


def test_small_fleets_still_use_the_endpoint_controller():
    cases = _load_cases_module()
    fleet = cases.build_fleet(240)
    from repro.cluster import EndpointController

    reference = EndpointController().bind(fleet.services, fleet.pods)
    assert [
        (b.service.name, [p.ident for p in b.backends]) for b in fleet.bindings
    ] == [(b.service.name, [p.ident for p in b.backends]) for b in reference]
