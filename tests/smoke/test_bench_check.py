"""The benchmark regression gate runs clean and actually detects regressions.

``benchmarks/run.py --check`` executes a smoke-sized benchmark pass and
compares its per-chart end-to-end numbers against the committed
``BENCH_connectivity.json`` with a tolerance band.  The smoke test pins both
directions: the tree as committed passes the gate, and a fabricated
regression (committed numbers far better than physically possible) is
actually caught -- the gate is not vacuously green.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_run_module():
    spec = importlib.util.spec_from_file_location(
        "bench_run", REPO_ROOT / "benchmarks" / "run.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.slow
def test_bench_check_passes_on_the_tree():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "benchmarks" / "run.py"), "--check"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "--check passed" in result.stdout


def test_check_detects_regression(tmp_path):
    bench_run = _load_run_module()
    committed = tmp_path / "BENCH_connectivity.json"
    committed.write_text(
        '{"end_to_end": {"charts": 290.0, "evaluation/current_s": 1e-9, '
        '"netpol_impact/compiled_s": 1e-9, "evaluation/store_warm_s": 1e-9}}'
    )
    record = {
        "end_to_end": {
            "charts": 4.0,
            "evaluation/current_s": 0.02,
            "netpol_impact/compiled_s": 0.01,
            "evaluation/store_warm_s": 0.01,
        }
    }
    failures = bench_run.check_against_committed(record, committed, tolerance=3.0)
    assert len(failures) == len(bench_run.CHECK_KEYS)
    assert all("ms/chart exceeds" in failure for failure in failures)


def test_check_passes_within_band(tmp_path):
    bench_run = _load_run_module()
    committed = tmp_path / "BENCH_connectivity.json"
    committed.write_text(
        '{"end_to_end": {"charts": 290.0, "evaluation/current_s": 0.29, '
        '"netpol_impact/compiled_s": 0.29, "evaluation/store_warm_s": 0.29}}'
    )
    record = {
        "end_to_end": {
            "charts": 4.0,
            "evaluation/current_s": 0.008,  # 2 ms/chart vs committed 1 ms/chart
            "netpol_impact/compiled_s": 0.004,
            "evaluation/store_warm_s": 0.004,
        }
    }
    assert bench_run.check_against_committed(record, committed, tolerance=3.0) == []


def test_check_flags_missing_keys(tmp_path):
    bench_run = _load_run_module()
    committed = tmp_path / "BENCH_connectivity.json"
    committed.write_text('{"end_to_end": {"charts": 290.0}}')
    failures = bench_run.check_against_committed(
        {"end_to_end": {"charts": 4.0}}, committed, tolerance=3.0
    )
    assert len(failures) == len(bench_run.CHECK_KEYS)
