"""Unit tests for services, network policies, parsing and inventories."""

import pytest

from repro.k8s import (
    Inventory,
    NetworkPolicy,
    NetworkPolicyPeer,
    NetworkPolicyPort,
    NetworkPolicyRule,
    ObjectMeta,
    Selector,
    Service,
    ServicePort,
    ValidationError,
    allow_ports_policy,
    deny_all_policy,
    dump_yaml,
    equality_selector,
    known_kinds,
    load_yaml,
    object_from_dict,
)
from repro.k8s.errors import ParseError
from tests.conftest import make_deployment, make_pod, make_service


class TestServicePort:
    def test_resolved_target_defaults_to_port(self):
        assert ServicePort(port=80).resolved_target() == 80

    def test_resolved_target_uses_explicit_target(self):
        assert ServicePort(port=80, target_port=8080).resolved_target() == 8080

    def test_named_target_port(self):
        assert ServicePort(port=80, target_port="http").resolved_target() == "http"

    def test_invalid_port_rejected(self):
        with pytest.raises(ValidationError):
            ServicePort(port=0)

    def test_from_dict_coerces_numeric_string_target(self):
        port = ServicePort.from_dict({"port": 80, "targetPort": "8080"})
        assert port.resolved_target() == 8080


class TestService:
    def test_headless_detection(self):
        assert make_service(headless=True).is_headless
        assert not make_service().is_headless

    def test_duplicate_ports_rejected(self):
        service = Service(
            metadata=ObjectMeta(name="s"),
            selector=equality_selector(app="web"),
            ports=[ServicePort(port=80, name="a"), ServicePort(port=80, name="b")],
        )
        with pytest.raises(ValidationError):
            service.validate()

    def test_multiple_ports_require_names(self):
        service = Service(
            metadata=ObjectMeta(name="s"),
            selector=equality_selector(app="web"),
            ports=[ServicePort(port=80), ServicePort(port=81)],
        )
        with pytest.raises(ValidationError):
            service.validate()

    def test_invalid_type_rejected(self):
        service = make_service()
        service.type = "Magic"
        with pytest.raises(ValidationError):
            service.validate()

    def test_from_dict_headless(self):
        service = Service.from_dict(
            {
                "metadata": {"name": "db"},
                "spec": {"clusterIP": None, "selector": {"app": "db"}, "ports": [{"port": 5432}]},
            }
        )
        assert service.is_headless

    def test_round_trip(self):
        service = make_service()
        restored = Service.from_dict(service.to_dict())
        assert restored.name == service.name
        assert restored.port_numbers() == {80}
        assert restored.target_ports() == [8080]


class TestNetworkPolicy:
    def test_empty_pod_selector_selects_all_in_namespace(self):
        policy = deny_all_policy("deny", "prod")
        assert policy.selects({"any": "labels"}, "prod")
        assert not policy.selects({"any": "labels"}, "other")

    def test_deny_all_blocks_everything(self):
        policy = deny_all_policy("deny")
        assert not policy.allows_ingress({"app": "x"}, "default", 80)

    def test_allow_ports_policy_allows_listed_port_only(self):
        policy = allow_ports_policy("allow", equality_selector(app="web"), [8080])
        assert policy.allows_ingress({"any": "pod"}, "default", 8080)
        assert not policy.allows_ingress({"any": "pod"}, "default", 9090)

    def test_peer_restriction(self):
        policy = allow_ports_policy(
            "allow", equality_selector(app="web"), [8080],
            peer_selector=equality_selector(role="frontend"),
        )
        assert policy.allows_ingress({"role": "frontend"}, "default", 8080)
        assert not policy.allows_ingress({"role": "batch"}, "default", 8080)

    def test_cross_namespace_peer_denied_without_namespace_selector(self):
        policy = allow_ports_policy("allow", equality_selector(app="web"), [8080])
        rule = policy.ingress[0]
        rule.peers.append(NetworkPolicyPeer(pod_selector=Selector()))
        assert not policy.allows_ingress({"x": "y"}, "other-namespace", 8080)

    def test_namespace_selector_peer(self):
        peer = NetworkPolicyPeer(namespace_selector=equality_selector(team="platform"))
        assert peer.matches_pod({"a": "b"}, "other", "default", namespace_labels={"team": "platform"})
        assert not peer.matches_pod({"a": "b"}, "other", "default", namespace_labels={"team": "x"})

    def test_ip_block_peer_never_matches_pods(self):
        peer = NetworkPolicyPeer(ip_block="10.0.0.0/8")
        assert not peer.matches_pod({"a": "b"}, "default", "default")

    def test_named_port_resolution(self):
        port = NetworkPolicyPort(port="http")
        assert port.matches(8080, "TCP", named_ports={"http": 8080})
        assert not port.matches(8080, "TCP", named_ports={})

    def test_port_range(self):
        port = NetworkPolicyPort(port=30000, end_port=32000)
        assert port.matches(31000)
        assert not port.matches(33000)

    def test_end_port_without_numeric_port_rejected(self):
        with pytest.raises(ValidationError):
            NetworkPolicyPort(port="http", end_port=90)

    def test_policy_round_trip(self):
        policy = allow_ports_policy("allow", equality_selector(app="web"), [80, 443])
        restored = NetworkPolicy.from_dict(policy.to_dict())
        assert restored.allows_ingress({"x": "y"}, "default", 443)
        assert not restored.allows_ingress({"x": "y"}, "default", 8443)

    def test_rule_with_no_peers_and_no_ports_allows_all(self):
        rule = NetworkPolicyRule()
        assert rule.allows({"a": "b"}, "default", "default", 12345)

    def test_invalid_policy_type_rejected(self):
        policy = deny_all_policy("deny")
        policy.policy_types = ["Sideways"]
        with pytest.raises(ValidationError):
            policy.validate()


class TestRegistryAndYaml:
    def test_known_kinds_include_core_resources(self):
        kinds = known_kinds()
        assert {"Pod", "Deployment", "Service", "NetworkPolicy"} <= set(kinds)

    def test_object_from_dict_dispatches_on_kind(self):
        obj = object_from_dict({"kind": "Service", "metadata": {"name": "s"}, "spec": {"ports": []}})
        assert isinstance(obj, Service)

    def test_unknown_kind_falls_back_to_generic(self):
        obj = object_from_dict({"kind": "FancyCRD", "metadata": {"name": "x"}})
        assert obj.kind == "FancyCRD"

    def test_missing_kind_raises(self):
        with pytest.raises(ParseError):
            object_from_dict({"metadata": {"name": "x"}})

    def test_load_yaml_multi_document(self):
        text = """
apiVersion: v1
kind: Service
metadata:
  name: web
spec:
  selector:
    app: web
  ports:
    - port: 80
---
apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  selector:
    matchLabels:
      app: web
  template:
    metadata:
      labels:
        app: web
    spec:
      containers:
        - name: web
          image: nginx
          ports:
            - containerPort: 80
"""
        objects = load_yaml(text)
        assert [obj.kind for obj in objects] == ["Service", "Deployment"]

    def test_load_yaml_invalid_text_raises(self):
        with pytest.raises(ParseError):
            load_yaml("key: [unclosed")

    def test_dump_and_reload_round_trip(self):
        objects = [make_deployment(), make_service()]
        reloaded = load_yaml(dump_yaml(objects))
        assert {obj.kind for obj in reloaded} == {"Deployment", "Service"}
        deployment = next(obj for obj in reloaded if obj.kind == "Deployment")
        assert deployment.pod_labels() == {"app": "web"}


class TestInventory:
    def test_compute_units_include_workloads_and_pods(self):
        inventory = Inventory([make_deployment(), make_pod("p"), make_service()])
        assert {unit.kind for unit in inventory.compute_units()} == {"Deployment", "Pod"}

    def test_services_selecting(self):
        inventory = Inventory([make_deployment(), make_service()])
        services = inventory.services_selecting({"app": "web"}, "default")
        assert [service.name for service in services] == ["web"]
        assert inventory.services_selecting({"app": "other"}, "default") == []

    def test_compute_units_selected_by_service(self):
        inventory = Inventory([make_deployment(), make_service()])
        selected = inventory.compute_units_selected_by(inventory.services()[0])
        assert [unit.name for unit in selected] == ["web"]

    def test_selection_respects_namespace(self):
        inventory = Inventory([make_deployment(namespace="prod"), make_service(namespace="dev")])
        assert inventory.compute_units_selected_by(inventory.services()[0]) == []

    def test_policies_selecting(self):
        inventory = Inventory([make_deployment(), deny_all_policy("deny")])
        assert len(inventory.policies_selecting({"app": "web"}, "default")) == 1

    def test_validate_all_collects_errors(self):
        bad = make_deployment()
        bad.selector = equality_selector(app="mismatch")
        errors = Inventory([bad, make_service()]).validate_all()
        assert len(errors) == 1
        assert "selector" in errors[0]

    def test_compute_unit_wrapper_helpers(self):
        inventory = Inventory([make_deployment(ports=[80, 443], host_network=True)])
        unit = inventory.compute_units()[0]
        assert unit.declared_port_numbers() == {80, 443}
        assert unit.uses_host_network()
        assert unit.replica_count() == 1
