"""Unit tests for label and selector semantics."""

import pytest

from repro.k8s import (
    LabelSelectorRequirement,
    LabelSet,
    Selector,
    SelectorError,
    ValidationError,
    equality_selector,
    find_duplicate_label_sets,
    parse_selector,
    selectors_overlap,
)
from repro.k8s.labels import validate_label_key, validate_label_value


class TestLabelValidation:
    def test_simple_key_is_valid(self):
        assert validate_label_key("app") == "app"

    def test_prefixed_key_is_valid(self):
        assert validate_label_key("app.kubernetes.io/name") == "app.kubernetes.io/name"

    def test_empty_key_is_rejected(self):
        with pytest.raises(ValidationError):
            validate_label_key("")

    def test_key_with_invalid_characters_is_rejected(self):
        with pytest.raises(ValidationError):
            validate_label_key("app name")

    def test_key_longer_than_63_characters_is_rejected(self):
        with pytest.raises(ValidationError):
            validate_label_key("a" * 64)

    def test_invalid_prefix_is_rejected(self):
        with pytest.raises(ValidationError):
            validate_label_key("UPPER.example.com/name")

    def test_empty_value_is_allowed(self):
        assert validate_label_value("") == ""

    def test_value_with_spaces_is_rejected(self):
        with pytest.raises(ValidationError):
            validate_label_value("two words")

    def test_non_string_value_is_rejected(self):
        with pytest.raises(ValidationError):
            validate_label_value(None)  # type: ignore[arg-type]


class TestLabelSet:
    def test_behaves_like_a_mapping(self):
        labels = LabelSet({"app": "web", "tier": "frontend"})
        assert labels["app"] == "web"
        assert len(labels) == 2
        assert set(labels) == {"app", "tier"}

    def test_is_hashable_and_equal_by_content(self):
        first = LabelSet({"app": "web"})
        second = LabelSet({"app": "web"})
        assert first == second
        assert hash(first) == hash(second)
        assert len({first, second}) == 1

    def test_equality_with_plain_dict(self):
        assert LabelSet({"app": "web"}) == {"app": "web"}

    def test_merged_overrides_existing_keys(self):
        merged = LabelSet({"app": "web", "tier": "x"}).merged({"tier": "backend"})
        assert merged == {"app": "web", "tier": "backend"}

    def test_merged_does_not_mutate_original(self):
        original = LabelSet({"app": "web"})
        original.merged({"extra": "1"})
        assert "extra" not in original

    def test_subset_of(self):
        assert LabelSet({"app": "web"}).subset_of({"app": "web", "tier": "f"})
        assert not LabelSet({"app": "web", "x": "y"}).subset_of({"app": "web"})

    def test_shared_with(self):
        shared = LabelSet({"a": "1", "b": "2"}).shared_with({"a": "1", "b": "3"})
        assert shared == {"a": "1"}

    def test_values_are_coerced_to_strings(self):
        assert LabelSet({"replicas": 3})["replicas"] == "3"

    def test_invalid_key_raises(self):
        with pytest.raises(ValidationError):
            LabelSet({"bad key": "x"})


class TestSelectorRequirement:
    def test_in_operator(self):
        requirement = LabelSelectorRequirement("tier", "In", ("web", "api"))
        assert requirement.matches({"tier": "web"})
        assert not requirement.matches({"tier": "db"})
        assert not requirement.matches({})

    def test_not_in_operator_matches_absent_key(self):
        requirement = LabelSelectorRequirement("tier", "NotIn", ("db",))
        assert requirement.matches({})
        assert requirement.matches({"tier": "web"})
        assert not requirement.matches({"tier": "db"})

    def test_exists_operator(self):
        requirement = LabelSelectorRequirement("tier", "Exists")
        assert requirement.matches({"tier": "anything"})
        assert not requirement.matches({})

    def test_does_not_exist_operator(self):
        requirement = LabelSelectorRequirement("tier", "DoesNotExist")
        assert requirement.matches({})
        assert not requirement.matches({"tier": "x"})

    def test_in_without_values_is_rejected(self):
        with pytest.raises(SelectorError):
            LabelSelectorRequirement("tier", "In")

    def test_exists_with_values_is_rejected(self):
        with pytest.raises(SelectorError):
            LabelSelectorRequirement("tier", "Exists", ("x",))

    def test_unknown_operator_is_rejected(self):
        with pytest.raises(SelectorError):
            LabelSelectorRequirement("tier", "Matches")


class TestSelector:
    def test_equality_selector_matches_superset(self):
        selector = equality_selector(app="web")
        assert selector.matches({"app": "web", "extra": "1"})

    def test_equality_selector_rejects_different_value(self):
        assert not equality_selector(app="web").matches({"app": "api"})

    def test_empty_selector_matches_everything(self):
        assert Selector().matches({"anything": "goes"})
        assert Selector().is_empty

    def test_match_expressions_are_conjunctive(self):
        selector = Selector(
            match_labels=LabelSet({"app": "web"}),
            match_expressions=(LabelSelectorRequirement("tier", "Exists"),),
        )
        assert selector.matches({"app": "web", "tier": "frontend"})
        assert not selector.matches({"app": "web"})

    def test_from_dict_modern_shape(self):
        selector = Selector.from_dict(
            {"matchLabels": {"app": "web"},
             "matchExpressions": [{"key": "tier", "operator": "In", "values": ["a"]}]}
        )
        assert selector.matches({"app": "web", "tier": "a"})

    def test_from_dict_legacy_shape(self):
        selector = parse_selector({"app": "web"})
        assert selector.match_labels == {"app": "web"}

    def test_from_dict_none_gives_empty_selector(self):
        assert Selector.from_dict(None).is_empty

    def test_round_trip_to_dict(self):
        selector = Selector(
            match_labels=LabelSet({"app": "web"}),
            match_expressions=(LabelSelectorRequirement("tier", "NotIn", ("db",)),),
        )
        assert Selector.from_dict(selector.to_dict()) == selector

    def test_requirement_keys(self):
        selector = Selector(
            match_labels=LabelSet({"app": "web"}),
            match_expressions=(LabelSelectorRequirement("tier", "Exists"),),
        )
        assert selector.requirement_keys() == {"app", "tier"}


class TestCollisionHelpers:
    def test_find_duplicate_label_sets_groups_identical_sets(self):
        duplicates = find_duplicate_label_sets(
            [
                ("a", {"app": "x"}),
                ("b", {"app": "x"}),
                ("c", {"app": "y"}),
            ]
        )
        assert len(duplicates) == 1
        labels, names = duplicates[0]
        assert labels == {"app": "x"}
        assert names == ["a", "b"]

    def test_find_duplicate_label_sets_ignores_empty_labels(self):
        assert find_duplicate_label_sets([("a", {}), ("b", {})]) == []

    def test_find_duplicate_label_sets_skips_invalid_labels(self):
        duplicates = find_duplicate_label_sets([("a", {"bad key": "x"}), ("b", {"bad key": "x"})])
        assert duplicates == []

    def test_selectors_overlap(self):
        first = equality_selector(app="web")
        second = equality_selector(tier="frontend")
        population = [{"app": "web", "tier": "frontend"}]
        assert selectors_overlap(first, second, population)
        assert not selectors_overlap(first, second, [{"app": "web"}])
