"""Unit tests for metadata, containers, pods and workload controllers."""

import pytest

from repro.k8s import (
    Container,
    ContainerPort,
    CronJob,
    DaemonSet,
    Deployment,
    EnvVar,
    Job,
    LabelSet,
    ObjectMeta,
    Pod,
    PodSpec,
    PodTemplateSpec,
    Probe,
    StatefulSet,
    ValidationError,
    equality_selector,
    is_compute_unit_kind,
    is_ephemeral_port,
    validate_port_number,
)
from tests.conftest import make_deployment


class TestObjectMeta:
    def test_defaults(self):
        meta = ObjectMeta(name="web")
        assert meta.namespace == "default"
        assert meta.labels == {}

    def test_invalid_name_is_rejected(self):
        with pytest.raises(ValidationError):
            ObjectMeta(name="Invalid_Name")

    def test_invalid_namespace_is_rejected(self):
        with pytest.raises(ValidationError):
            ObjectMeta(name="web", namespace="name.with.dots")

    def test_labels_are_converted_to_labelset(self):
        meta = ObjectMeta(name="web", labels={"app": "web"})
        assert isinstance(meta.labels, LabelSet)

    def test_round_trip(self):
        meta = ObjectMeta(name="web", namespace="prod", labels={"a": "b"}, annotations={"x": "y"})
        assert ObjectMeta.from_dict(meta.to_dict()) == meta

    def test_qualified_name(self):
        deployment = make_deployment("web", namespace="prod")
        assert deployment.qualified_name() == "Deployment/prod/web"

    def test_key_is_kind_namespace_name(self):
        assert make_deployment("web").key == ("Deployment", "default", "web")


class TestContainerPort:
    def test_valid_port(self):
        port = ContainerPort(8080, name="http")
        assert port.container_port == 8080

    @pytest.mark.parametrize("bad", [0, -1, 65536, 70000])
    def test_invalid_port_number(self, bad):
        with pytest.raises(ValidationError):
            ContainerPort(bad)

    def test_invalid_protocol(self):
        with pytest.raises(ValidationError):
            ContainerPort(80, protocol="ICMP")

    def test_round_trip(self):
        port = ContainerPort(8443, protocol="TCP", name="https", host_port=443)
        assert ContainerPort.from_dict(port.to_dict()) == port

    def test_validate_port_number_helper(self):
        assert validate_port_number(443) == 443
        with pytest.raises(ValidationError):
            validate_port_number(True)

    def test_ephemeral_port_range(self):
        assert is_ephemeral_port(40000)
        assert not is_ephemeral_port(8080)
        assert not is_ephemeral_port(61001)


class TestContainer:
    def test_declared_port_numbers_by_protocol(self):
        container = Container(
            name="c",
            ports=[ContainerPort(80), ContainerPort(53, protocol="UDP")],
        )
        assert container.declared_port_numbers() == {80, 53}
        assert container.declared_port_numbers("TCP") == {80}
        assert container.declared_port_numbers("UDP") == {53}

    def test_port_named(self):
        container = Container(name="c", ports=[ContainerPort(80, name="http")])
        assert container.port_named("http").container_port == 80
        assert container.port_named("missing") is None

    def test_env_value(self):
        container = Container(name="c", env=[EnvVar("PORT", "9000")])
        assert container.env_value("PORT") == "9000"
        assert container.env_value("OTHER", "fallback") == "fallback"

    def test_duplicate_port_names_rejected(self):
        container = Container(
            name="c", ports=[ContainerPort(80, name="web"), ContainerPort(81, name="web")]
        )
        with pytest.raises(ValidationError):
            container.validate()

    def test_container_without_name_rejected(self):
        with pytest.raises(ValidationError):
            Container(name="").validate()

    def test_round_trip_with_probes(self):
        container = Container(
            name="c",
            image="img",
            ports=[ContainerPort(80, name="http")],
            liveness_probe=Probe(port=80, path="/healthz"),
            readiness_probe=Probe(port="http", kind="tcpSocket"),
        )
        restored = Container.from_dict(container.to_dict())
        assert restored.name == "c"
        assert restored.liveness_probe.port == 80

    def test_probe_from_empty_dict(self):
        assert Probe.from_dict(None) is None
        assert Probe.from_dict({}) is None


class TestPodSpec:
    def test_requires_at_least_one_container(self):
        with pytest.raises(ValidationError):
            PodSpec().validate()

    def test_duplicate_container_names_rejected(self):
        spec = PodSpec(containers=[Container(name="a"), Container(name="a")])
        with pytest.raises(ValidationError):
            spec.validate()

    def test_declared_port_numbers_across_containers(self):
        spec = PodSpec(
            containers=[
                Container(name="a", ports=[ContainerPort(80)]),
                Container(name="b", ports=[ContainerPort(9090)]),
            ]
        )
        assert spec.declared_port_numbers() == {80, 9090}

    def test_resolve_port_name(self):
        spec = PodSpec(containers=[Container(name="a", ports=[ContainerPort(80, name="http")])])
        assert spec.resolve_port_name("http") == 80
        assert spec.resolve_port_name("nope") is None

    def test_round_trip(self):
        spec = PodSpec(
            containers=[Container(name="a", ports=[ContainerPort(80)])],
            host_network=True,
            service_account_name="svc",
        )
        restored = PodSpec.from_dict(spec.to_dict())
        assert restored.host_network is True
        assert restored.service_account_name == "svc"


class TestPod:
    def test_pod_from_template_copies_labels_and_spec(self):
        template = PodTemplateSpec(
            metadata=ObjectMeta(name="tmpl", labels=LabelSet({"app": "web"})),
            spec=PodSpec(containers=[Container(name="c", ports=[ContainerPort(80)])]),
        )
        pod = Pod.from_template(template, name="web-0", extra_labels={"pod-template-hash": "abc"})
        assert pod.labels == {"app": "web", "pod-template-hash": "abc"}
        assert pod.spec.declared_port_numbers() == {80}

    def test_pod_validation_requires_name(self):
        pod = Pod(spec=PodSpec(containers=[Container(name="c")]))
        with pytest.raises(ValidationError):
            pod.validate()

    def test_pod_to_dict_contains_kind(self):
        pod = Pod(metadata=ObjectMeta(name="p"), spec=PodSpec(containers=[Container(name="c")]))
        data = pod.to_dict()
        assert data["kind"] == "Pod"
        assert data["spec"]["containers"][0]["name"] == "c"


class TestWorkloads:
    def test_deployment_replica_count(self):
        assert make_deployment(replicas=3).replica_count() == 3

    def test_negative_replicas_clamp_to_zero(self):
        assert make_deployment(replicas=-2).replica_count() == 0

    def test_selector_must_match_template(self):
        deployment = make_deployment()
        deployment.selector = equality_selector(app="other")
        with pytest.raises(ValidationError):
            deployment.validate()

    def test_valid_deployment_passes_validation(self):
        make_deployment().validate()

    def test_statefulset_round_trip_preserves_service_name(self):
        sts = StatefulSet(
            metadata=ObjectMeta(name="db", labels=LabelSet({"app": "db"})),
            replicas=2,
            selector=equality_selector(app="db"),
            template=PodTemplateSpec(
                metadata=ObjectMeta(name="db", labels=LabelSet({"app": "db"})),
                spec=PodSpec(containers=[Container(name="db", ports=[ContainerPort(5432)])]),
            ),
            service_name="db-headless",
        )
        restored = StatefulSet.from_dict(sts.to_dict())
        assert restored.service_name == "db-headless"
        assert restored.replica_count() == 2

    def test_daemonset_has_no_replicas_in_spec(self):
        daemonset = DaemonSet(
            metadata=ObjectMeta(name="agent", labels=LabelSet({"app": "agent"})),
            selector=equality_selector(app="agent"),
            template=PodTemplateSpec(
                metadata=ObjectMeta(name="agent", labels=LabelSet({"app": "agent"})),
                spec=PodSpec(containers=[Container(name="agent")]),
            ),
        )
        assert "replicas" not in daemonset.to_dict()["spec"]
        assert daemonset.replica_count() >= 1

    def test_job_without_selector_is_valid(self):
        job = Job(
            metadata=ObjectMeta(name="migrate"),
            template=PodTemplateSpec(
                metadata=ObjectMeta(name="migrate"),
                spec=PodSpec(containers=[Container(name="migrate")]),
            ),
        )
        job.validate()

    def test_cronjob_round_trip(self):
        cronjob = CronJob(
            metadata=ObjectMeta(name="backup"),
            schedule="0 3 * * *",
            template=PodTemplateSpec(
                metadata=ObjectMeta(name="backup"),
                spec=PodSpec(containers=[Container(name="backup")]),
            ),
        )
        restored = CronJob.from_dict(cronjob.to_dict())
        assert restored.schedule == "0 3 * * *"
        assert restored.template.spec.containers[0].name == "backup"

    def test_workload_pod_labels_come_from_template(self):
        deployment = make_deployment(labels={"app": "x"})
        assert deployment.pod_labels() == {"app": "x"}

    def test_compute_unit_kind_helper(self):
        assert is_compute_unit_kind("Deployment")
        assert is_compute_unit_kind("Pod")
        assert not is_compute_unit_kind("Service")
