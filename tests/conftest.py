"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import (
    BehaviorRegistry,
    Cluster,
    ContainerBehavior,
    ListenSpec,
)
from repro.core import AnalyzerSettings, MisconfigurationAnalyzer
from repro.datasets import InjectionPlan, build_application
from repro.helm import Chart, render_chart
from repro.k8s import (
    Container,
    ContainerPort,
    Deployment,
    LabelSet,
    ObjectMeta,
    Pod,
    PodSpec,
    PodTemplateSpec,
    Service,
    ServicePort,
    equality_selector,
)


def make_deployment(
    name: str = "web",
    labels: dict | None = None,
    ports: list[int] | None = None,
    replicas: int = 1,
    image: str = "example/web",
    host_network: bool = False,
    namespace: str = "default",
) -> Deployment:
    """Build a minimal valid Deployment for tests."""
    labels = labels or {"app": name}
    return Deployment(
        metadata=ObjectMeta(name=name, namespace=namespace, labels=LabelSet(labels)),
        replicas=replicas,
        selector=equality_selector(**labels),
        template=PodTemplateSpec(
            metadata=ObjectMeta(name=name, namespace=namespace, labels=LabelSet(labels)),
            spec=PodSpec(
                containers=[
                    Container(
                        name=name,
                        image=image,
                        ports=[ContainerPort(port) for port in (ports or [8080])],
                    )
                ],
                host_network=host_network,
            ),
        ),
    )


def make_service(
    name: str = "web",
    selector: dict | None = None,
    port: int = 80,
    target_port: int | str | None = 8080,
    headless: bool = False,
    namespace: str = "default",
) -> Service:
    """Build a minimal valid Service for tests."""
    return Service(
        metadata=ObjectMeta(name=name, namespace=namespace),
        selector=equality_selector(**(selector or {"app": "web"})),
        ports=[ServicePort(port=port, target_port=target_port, name="main")],
        cluster_ip="None" if headless else "",
    )


def make_pod(
    name: str = "attacker",
    labels: dict | None = None,
    ports: list[int] | None = None,
    image: str = "example/pod",
    namespace: str = "default",
) -> Pod:
    """Build a minimal valid Pod for tests."""
    return Pod(
        metadata=ObjectMeta(name=name, namespace=namespace, labels=LabelSet(labels or {"app": name})),
        spec=PodSpec(
            containers=[
                Container(name=name, image=image, ports=[ContainerPort(p) for p in (ports or [])])
            ]
        ),
    )


@pytest.fixture
def web_deployment() -> Deployment:
    return make_deployment()


@pytest.fixture
def web_service() -> Service:
    return make_service()


@pytest.fixture
def small_cluster() -> Cluster:
    """An empty simulated cluster with two worker nodes."""
    return Cluster(name="test", worker_count=2, seed=7)


@pytest.fixture
def deployed_cluster() -> Cluster:
    """A cluster with a web deployment, its service, and an attacker pod."""
    registry = BehaviorRegistry()
    registry.register(
        "example/web",
        ContainerBehavior(
            listen_on_declared=True,
            extra_listens=[ListenSpec(port=9999)],
        ),
    )
    cluster = Cluster(name="test", worker_count=2, behaviors=registry, seed=7)
    cluster.install(
        [make_deployment(replicas=2), make_service(), make_pod("attacker")],
        app_name="web",
    )
    return cluster


@pytest.fixture
def analyzer() -> MisconfigurationAnalyzer:
    return MisconfigurationAnalyzer(settings=AnalyzerSettings(worker_count=2, seed=7))


@pytest.fixture
def simple_chart() -> Chart:
    """A small Helm chart with one deployment and one service."""
    values = "replicas: 1\nimage: example/web\nservice:\n  port: 80\n  targetPort: 8080\n"
    deployment = """
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-web
  labels:
    app: {{ .Chart.Name }}
spec:
  replicas: {{ .Values.replicas }}
  selector:
    matchLabels:
      app: {{ .Chart.Name }}
  template:
    metadata:
      labels:
        app: {{ .Chart.Name }}
    spec:
      containers:
        - name: web
          image: {{ .Values.image | quote }}
          ports:
            - containerPort: {{ .Values.service.targetPort }}
"""
    service = """
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-web
spec:
  selector:
    app: {{ .Chart.Name }}
  ports:
    - name: http
      port: {{ .Values.service.port }}
      targetPort: {{ .Values.service.targetPort }}
"""
    return Chart.from_files(
        "sample",
        values_yaml=values,
        templates={"deployment.yaml": deployment, "service.yaml": service},
    )


@pytest.fixture
def misconfigured_application():
    """A built application exhibiting one finding of almost every class."""
    plan = InjectionPlan(
        m1=2, m2=1, m3=1, m4a=1, m4b=1, m4c=1, m5a=1, m5b=1, m5c=1, m5d=1, m6=True, m7=1
    )
    return build_application("fixture-app", "Test Org", plan, archetype="microservices",
                             dataset="fixtures")


@pytest.fixture
def clean_application():
    """A built application with no misconfigurations at all."""
    plan = InjectionPlan()
    return build_application("clean-app", "Test Org", plan, archetype="web", dataset="fixtures")


@pytest.fixture
def rendered_simple_chart(simple_chart):
    return render_chart(simple_chart, release_name="rel")
