"""Unit tests for the re-implemented state-of-the-art tools."""

import pytest

from repro.baselines import (
    BaselineInput,
    Checkov,
    FOUND,
    KubeBench,
    KubeLinter,
    KubeScore,
    Kubeaudit,
    Kubesec,
    Kubescape,
    MISSED,
    NOT_APPLICABLE,
    NeuVector,
    OurSolution,
    PARTIAL,
    SLIKube,
    StackRox,
    Trivy,
    all_tools,
    third_party_tools,
    tool_by_name,
)
from repro.core import MisconfigClass
from repro.k8s import Inventory, deny_all_policy
from tests.conftest import make_deployment, make_service


def static_input(*objects) -> BaselineInput:
    return BaselineInput(inventory=Inventory(objects))


class TestRegistry:
    def test_eleven_third_party_tools(self):
        assert len(third_party_tools()) == 11

    def test_all_tools_includes_ours_last(self):
        tools = all_tools()
        assert len(tools) == 12
        assert tools[-1].name == "Our solution"

    def test_lookup_by_name_case_insensitive(self):
        assert tool_by_name("checkov").name == "Checkov"
        with pytest.raises(KeyError):
            tool_by_name("nonexistent")

    def test_categories(self):
        assert Checkov().category == "Static"
        assert KubeBench().category == "Runtime"
        assert Kubescape().category == "Hybrid"
        assert NeuVector().category == "Platform"


class TestHostNetworkCheck:
    @pytest.mark.parametrize(
        "tool_cls",
        [Checkov, Kubeaudit, KubeLinter, Kubesec, SLIKube, KubeBench, Kubescape, Trivy,
         NeuVector, StackRox],
    )
    def test_host_network_detected(self, tool_cls):
        findings = tool_cls().run(static_input(make_deployment(host_network=True)))
        assert any(f.misconfig_class is MisconfigClass.M7 for f in findings)

    def test_kube_score_does_not_check_host_network(self):
        findings = KubeScore().run(static_input(make_deployment(host_network=True)))
        assert not any(f.misconfig_class is MisconfigClass.M7 for f in findings)


class TestNetworkPolicyCheck:
    @pytest.mark.parametrize("tool_cls", [Checkov, Kubeaudit, KubeScore, Kubescape])
    def test_missing_policy_detected(self, tool_cls):
        findings = tool_cls().run(static_input(make_deployment()))
        assert any(f.misconfig_class is MisconfigClass.M6 for f in findings)

    @pytest.mark.parametrize("tool_cls", [Checkov, Kubeaudit, KubeScore, Kubescape])
    def test_covered_workload_not_flagged(self, tool_cls):
        findings = tool_cls().run(static_input(make_deployment(), deny_all_policy("deny")))
        assert not any(f.misconfig_class is MisconfigClass.M6 for f in findings)

    @pytest.mark.parametrize("tool_cls", [KubeLinter, Kubesec, SLIKube, Trivy, KubeBench])
    def test_tools_without_policy_check_miss_it(self, tool_cls):
        findings = tool_cls().run(static_input(make_deployment()))
        assert not any(f.misconfig_class is MisconfigClass.M6 for f in findings)


class TestDanglingServiceCheck:
    @pytest.mark.parametrize("tool_cls", [KubeLinter, KubeScore])
    def test_dangling_service_detected(self, tool_cls):
        findings = tool_cls().run(static_input(make_service(selector={"app": "ghost"})))
        assert any(f.misconfig_class is MisconfigClass.M5D for f in findings)

    @pytest.mark.parametrize("tool_cls", [KubeLinter, KubeScore])
    def test_matched_service_not_flagged(self, tool_cls):
        findings = tool_cls().run(static_input(make_deployment(), make_service()))
        assert not any(f.misconfig_class is MisconfigClass.M5D for f in findings)

    @pytest.mark.parametrize("tool_cls", [Checkov, Kubeaudit, Kubesec, SLIKube])
    def test_other_static_tools_miss_it(self, tool_cls):
        findings = tool_cls().run(static_input(make_service(selector={"app": "ghost"})))
        assert not any(f.misconfig_class is MisconfigClass.M5D for f in findings)


class TestKubescapeLabelHints:
    def test_shared_labels_reported_as_partial(self):
        shared = {"app": "shared"}
        findings = Kubescape().run(
            static_input(make_deployment("a", labels=shared), make_deployment("b", labels=shared))
        )
        label_findings = [f for f in findings if f.misconfig_class is MisconfigClass.M4A]
        assert label_findings and all(f.partial for f in label_findings)

    def test_unique_labels_not_reported(self):
        findings = Kubescape().run(
            static_input(make_deployment("a", labels={"app": "a"}),
                         make_deployment("b", labels={"app": "b"}))
        )
        assert not any(f.misconfig_class is MisconfigClass.M4A for f in findings)


class TestDetectionOutcomes:
    def test_found_outcome(self):
        tool = Checkov()
        findings = tool.run(static_input(make_deployment(host_network=True)))
        assert tool.detection_outcome(MisconfigClass.M7, findings) == FOUND

    def test_partial_outcome(self):
        tool = Kubescape()
        shared = {"app": "shared"}
        findings = tool.run(
            static_input(make_deployment("a", labels=shared), make_deployment("b", labels=shared))
        )
        assert tool.detection_outcome(MisconfigClass.M4A, findings) == PARTIAL

    def test_missed_outcome(self):
        tool = Checkov()
        assert tool.detection_outcome(MisconfigClass.M4A, []) == MISSED

    def test_not_applicable_for_runtime_classes_on_static_tools(self):
        tool = Checkov()
        assert tool.detection_outcome(MisconfigClass.M1, []) == NOT_APPLICABLE
        assert tool.detection_outcome(MisconfigClass.M2, []) == NOT_APPLICABLE

    def test_cluster_wide_not_applicable_for_static_and_runtime_tools(self):
        assert Checkov().detection_outcome(MisconfigClass.M4_GLOBAL, []) == NOT_APPLICABLE
        assert KubeBench().detection_outcome(MisconfigClass.M4_GLOBAL, []) == NOT_APPLICABLE
        assert Trivy().detection_outcome(MisconfigClass.M4_GLOBAL, []) == MISSED


class TestOurSolutionAdapter:
    def test_detects_static_classes_without_runtime(self):
        tool = OurSolution()
        findings = tool.run(static_input(make_deployment(host_network=True), make_service()))
        classes = {f.misconfig_class for f in findings}
        assert MisconfigClass.M7 in classes
        assert MisconfigClass.M6 in classes

    def test_cluster_inventories_enable_global_collisions(self):
        tool = OurSolution()
        shared = {"app": "shared"}
        data = BaselineInput(
            inventory=Inventory([make_deployment("a", labels=shared)]),
            cluster_inventories=[Inventory([make_deployment("a", labels=shared)])],
        )
        findings = tool.run(data)
        assert any(f.misconfig_class is MisconfigClass.M4_GLOBAL for f in findings)
