"""Differential re-verification suite for incremental delta-evaluation.

The invariant under test: **a delta round is byte-identical to a
from-scratch sweep of the same chart set** -- the delta evaluator changes
how much work a sweep does, never what it computes.  Every scenario
reduces to canonical-serialization identity via
:func:`tests.support.diffing.canonical_evaluation`:

* every change class -- values tweaks, template edits, behaviour-seed
  changes, chart additions, chart removals, no-op touches, settings
  changes -- in serial and pooled sweeps,
* Hypothesis-driven multi-round change sequences (each round delta'd
  against the previous, each compared to scratch),
* chaos interaction: a fault mid-delta quarantines the failing chart
  without serving its stale prior entry, healthy charts stay
  byte-identical, and the recovery round equals a clean scratch sweep,
* the durable path: classification from the store's epoch-tagged journal
  (fingerprint records and the pre-fingerprint result-key fallback alike),
* the ``slow``-marked full-catalogue differential over randomized change
  sets (acceptance criterion for this PR).

Satellites pinned here too: the ``EvaluationResult`` lazy-index staleness
fix (same-length mutate then re-query), ``SweepJournal`` superseded-entry
semantics under repeated resume+delta cycles, the classifier-fingerprint
orthogonality table, and the LRU observation memo that keeps watch rounds
warm.
"""

from __future__ import annotations

import copy
import dataclasses
import random

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro import faults
from repro.cluster import BehaviorRegistry, ContainerBehavior, ListenSpec
from repro.cluster.session import ObservationMemo
from repro.core import AnalyzerSettings
from repro.datasets import InjectionPlan, build_application, build_catalog
from repro.experiments import (
    DELTA_ADDED,
    DELTA_RE_ANALYZE,
    DELTA_RE_OBSERVE,
    DELTA_RE_RENDER,
    DELTA_UNCHANGED,
    DeltaEvaluator,
    classifier_fingerprints,
    run_full_evaluation,
    settings_fingerprint,
)
from repro.helm.chart import ChartTemplate
from repro.store import (
    ResultStore,
    SweepJournal,
    _seal_record,
    _unseal_line,
    read_prior_state,
)
from tests.support.diffing import assert_identical, canonical_evaluation

SAMPLE = 8
BACKOFF = 0.001


@pytest.fixture(scope="module")
def applications():
    return build_catalog()[:SAMPLE]


def uid(app) -> str:
    return f"{app.dataset}/{app.name}"


# ---------------------------------------------------------------------------
# Mutation helpers: each produces a *new* application list (charts are
# immutable once built; dataclasses.replace resets the cached fingerprint).
# ---------------------------------------------------------------------------


def values_tweak(apps, index, salt="delta-salt"):
    app = apps[index % len(apps)]
    values = copy.deepcopy(app.chart.values)
    values["deltaSalt"] = salt
    chart = dataclasses.replace(app.chart, values=values)
    mutated = list(apps)
    mutated[index % len(apps)] = dataclasses.replace(app, chart=chart)
    return mutated


def template_edit(apps, index, marker="# delta-edit"):
    app = apps[index % len(apps)]
    templates = [ChartTemplate(t.name, t.source) for t in app.chart.templates]
    templates[0] = ChartTemplate(templates[0].name, templates[0].source + f"\n{marker}\n")
    chart = dataclasses.replace(app.chart, templates=templates)
    mutated = list(apps)
    mutated[index % len(apps)] = dataclasses.replace(app, chart=chart)
    return mutated


def behavior_change(apps, index, port=31997):
    app = apps[index % len(apps)]
    registry = BehaviorRegistry()
    for image in app.behaviors.images():
        registry.register(image, app.behaviors.lookup(image))
    images = app.behaviors.images()
    if images:
        prior = app.behaviors.lookup(images[0])
        registry.register(
            images[0],
            ContainerBehavior(
                listen_on_declared=prior.listen_on_declared,
                extra_listens=list(prior.extra_listens) + [ListenSpec(port=port)],
                ignore_declared_ports=set(prior.ignore_declared_ports),
                static_port_env=prior.static_port_env,
            ),
        )
    else:
        registry.register("delta/extra:1.0", ContainerBehavior())
    mutated = list(apps)
    mutated[index % len(apps)] = dataclasses.replace(app, behaviors=registry)
    return mutated


def add_chart(apps, index):
    added = build_application(
        f"delta-added-{index}",
        "Bitnami",
        InjectionPlan(m1=1, m5a=1),
        dataset="Bitnami",
        use_case="sharing",
    )
    return list(apps) + [added]


def remove_chart(apps, index):
    if len(apps) <= 1:
        return list(apps)
    mutated = list(apps)
    del mutated[index % len(mutated)]
    return mutated


def noop_touch(apps, index):
    """Rebuild one chart with byte-equal content: every fingerprint holds."""
    app = apps[index % len(apps)]
    chart = dataclasses.replace(
        app.chart,
        values=copy.deepcopy(app.chart.values),
        templates=[ChartTemplate(t.name, t.source) for t in app.chart.templates],
    )
    mutated = list(apps)
    mutated[index % len(apps)] = dataclasses.replace(app, chart=chart)
    return mutated


CHANGE_CLASSES = {
    "values": values_tweak,
    "template": template_edit,
    "behaviors": behavior_change,
    "add": add_chart,
    "remove": remove_chart,
    "noop": noop_touch,
}


# ---------------------------------------------------------------------------
# The headline differential: delta == from-scratch, per change class,
# serial and pooled.
# ---------------------------------------------------------------------------


class TestDeltaDifferential:
    @pytest.mark.parametrize("workers", [None, 2], ids=["serial", "pooled"])
    @pytest.mark.parametrize("change", sorted(CHANGE_CLASSES))
    def test_delta_matches_scratch(self, applications, change, workers):
        evaluator = DeltaEvaluator(retry_backoff=BACKOFF)
        first = evaluator.evaluate(applications)
        assert first.delta_stats["classified"][DELTA_ADDED] == SAMPLE

        mutated = CHANGE_CLASSES[change](applications, 3)
        result = evaluator.evaluate(mutated, workers=workers)
        assert not result.failed
        scratch = run_full_evaluation(applications=mutated)
        assert_identical(
            canonical_evaluation(scratch),
            canonical_evaluation(result),
            f"delta[{change}] vs scratch",
        )

    def test_noop_round_reuses_everything(self, applications):
        evaluator = DeltaEvaluator(retry_backoff=BACKOFF)
        evaluator.evaluate(applications)
        result = evaluator.evaluate(noop_touch(applications, 3))
        stats = result.delta_stats
        assert stats["classified"][DELTA_UNCHANGED] == SAMPLE
        assert stats["reused"] == SAMPLE
        assert stats["recomputed"] == 0
        assert stats["changed"] == []

    def test_delta_result_never_aliases_prior_reports(self, applications):
        # The M4* pass of a new round appends findings through report.add;
        # reused reports must be fresh objects so the prior result's
        # canonical form survives any number of subsequent rounds.
        evaluator = DeltaEvaluator(retry_backoff=BACKOFF)
        first = evaluator.evaluate(applications)
        before = canonical_evaluation(first)
        evaluator.evaluate(values_tweak(applications, 1))
        evaluator.evaluate(remove_chart(applications, 2))
        assert_identical(before, canonical_evaluation(first), "prior result mutated")

    def test_settings_change_reclassifies_and_matches_scratch(self, applications):
        prior_settings = AnalyzerSettings()
        baseline = DeltaEvaluator(settings=prior_settings, retry_backoff=BACKOFF)
        prior = baseline.evaluate(applications)

        changed = AnalyzerSettings(seed=2026)
        evaluator = DeltaEvaluator(settings=changed, retry_backoff=BACKOFF)
        plan = evaluator.plan(
            applications,
            prior=prior,
            prior_settings_fp=settings_fingerprint(prior_settings),
        )
        assert plan.counts()[DELTA_RE_ANALYZE] == SAMPLE
        result = evaluator.evaluate(
            applications,
            prior=prior,
            prior_settings_fp=settings_fingerprint(prior_settings),
        )
        scratch = run_full_evaluation(applications=applications, settings=changed)
        assert_identical(
            canonical_evaluation(scratch),
            canonical_evaluation(result),
            "delta[settings] vs scratch",
        )


class TestClassification:
    def evaluator_with_prior(self, applications):
        evaluator = DeltaEvaluator(retry_backoff=BACKOFF)
        evaluator.evaluate(applications)
        return evaluator

    def test_values_tweak_is_re_render_with_reason(self, applications):
        evaluator = self.evaluator_with_prior(applications)
        mutated = values_tweak(applications, 2)
        plan = evaluator.plan(mutated)
        delta = plan.charts[2]
        assert delta.classification == DELTA_RE_RENDER
        assert delta.reasons == ("values",)
        assert plan.counts()[DELTA_UNCHANGED] == SAMPLE - 1

    def test_template_edit_is_re_render_with_reason(self, applications):
        evaluator = self.evaluator_with_prior(applications)
        plan = evaluator.plan(template_edit(applications, 4))
        assert plan.charts[4].classification == DELTA_RE_RENDER
        assert plan.charts[4].reasons == ("templates",)

    def test_behavior_change_is_re_observe(self, applications):
        evaluator = self.evaluator_with_prior(applications)
        plan = evaluator.plan(behavior_change(applications, 5))
        assert plan.charts[5].classification == DELTA_RE_OBSERVE
        assert plan.charts[5].reasons == ("behaviors",)

    def test_added_and_removed_charts_are_named(self, applications):
        evaluator = self.evaluator_with_prior(applications)
        mutated = remove_chart(add_chart(applications, 0), 1)
        plan = evaluator.plan(mutated)
        assert plan.classification_of("Bitnami/delta-added-0") == DELTA_ADDED
        assert plan.removed == (uid(applications[1]),)

    def test_prior_failure_is_never_unchanged(self, applications):
        evaluator = DeltaEvaluator(retry_backoff=BACKOFF)
        poison = faults.FaultPlan(
            faults.FaultSpec(site=faults.OBSERVE, charts=(uid(applications[0]),), attempts=10)
        )
        first = evaluator.evaluate(applications, fault_plan=poison)
        assert [failure.unique_id for failure in first.failed] == [uid(applications[0])]
        plan = evaluator.plan(applications)
        assert plan.charts[0].classification == DELTA_RE_RENDER
        assert plan.charts[0].reasons == ("prior failure",)
        assert plan.counts()[DELTA_UNCHANGED] == SAMPLE - 1


# ---------------------------------------------------------------------------
# Chaos interaction: faults mid-delta must not leave stale results behind.
# ---------------------------------------------------------------------------


class TestDeltaChaos:
    def test_fault_mid_delta_quarantines_without_stale_reuse(self, applications):
        evaluator = DeltaEvaluator(retry_backoff=BACKOFF)
        evaluator.evaluate(applications)
        mutated = values_tweak(applications, 3)
        victim = uid(mutated[3])
        plan = faults.FaultPlan(
            faults.FaultSpec(site=faults.OBSERVE, charts=(victim,), attempts=10)
        )
        result = evaluator.evaluate(mutated, fault_plan=plan)
        # The changed chart failed: it must appear quarantined, and its
        # stale prior report must not be served in its place.
        assert [failure.unique_id for failure in result.failed] == [victim]
        assert result.report_for(mutated[3].dataset, mutated[3].name) is None
        # Healthy charts are byte-identical to a scratch sweep under the
        # same fault plan (same analyzed set, same M4* pass).
        scratch = run_full_evaluation(
            applications=mutated, fault_plan=plan, retry_backoff=BACKOFF
        )
        assert_identical(
            canonical_evaluation(scratch),
            canonical_evaluation(result),
            "faulted delta vs faulted scratch",
        )

    def test_recovery_round_equals_clean_scratch(self, applications):
        evaluator = DeltaEvaluator(retry_backoff=BACKOFF)
        evaluator.evaluate(applications)
        mutated = values_tweak(applications, 3)
        plan = faults.FaultPlan(
            faults.FaultSpec(site=faults.RULES, charts=(uid(mutated[3]),), attempts=10)
        )
        faulted = evaluator.evaluate(mutated, fault_plan=plan)
        assert faulted.failed
        recovered = evaluator.evaluate(mutated)
        assert not recovered.failed
        scratch = run_full_evaluation(applications=mutated)
        assert_identical(
            canonical_evaluation(scratch),
            canonical_evaluation(recovered),
            "recovery round vs clean scratch",
        )

    def test_transient_fault_healed_by_retry_is_invisible(self, applications):
        evaluator = DeltaEvaluator(retry_backoff=BACKOFF)
        evaluator.evaluate(applications)
        mutated = template_edit(applications, 2)
        plan = faults.FaultPlan(
            faults.FaultSpec(site=faults.OBSERVE, charts=(uid(mutated[2]),), attempts=1)
        )
        result = evaluator.evaluate(mutated, fault_plan=plan)
        assert not result.failed
        entry = result.report_for(mutated[2].dataset, mutated[2].name)
        assert entry is not None
        scratch = run_full_evaluation(applications=mutated)
        assert_identical(
            canonical_evaluation(scratch),
            canonical_evaluation(result),
            "healed delta vs scratch",
        )


# ---------------------------------------------------------------------------
# Hypothesis-driven change sequences: arbitrary edit chains, each round
# delta'd against the previous and compared to scratch.
# ---------------------------------------------------------------------------

operations = st.lists(
    st.tuples(st.sampled_from(sorted(CHANGE_CLASSES)), st.integers(0, SAMPLE - 1)),
    min_size=1,
    max_size=4,
)


class TestChangeSequences:
    @hyp_settings(max_examples=8, deadline=None)
    @given(ops=operations)
    def test_every_round_matches_scratch(self, ops):
        base = build_catalog()[:4]
        evaluator = DeltaEvaluator(retry_backoff=BACKOFF)
        current = list(base)
        evaluator.evaluate(current)
        for step, (op, index) in enumerate(ops):
            if op == "add":
                current = add_chart(current, step)
            else:
                current = CHANGE_CLASSES[op](current, index)
            result = evaluator.evaluate(current)
            assert not result.failed
            scratch = run_full_evaluation(applications=current)
            assert_identical(
                canonical_evaluation(scratch),
                canonical_evaluation(result),
                f"round {step + 1} ({op}) vs scratch",
            )


# ---------------------------------------------------------------------------
# Durable prior state: classification from the store's epoch-tagged journal.
# ---------------------------------------------------------------------------


class TestDurableDelta:
    def test_store_delta_reuses_and_matches_scratch(self, applications, tmp_path):
        store_dir = tmp_path / "store"
        run_full_evaluation(applications=applications, store=ResultStore(store_dir))

        evaluator = DeltaEvaluator(store=store_dir, retry_backoff=BACKOFF)
        mutated = values_tweak(applications, 3)
        plan = evaluator.plan(mutated)
        assert plan.charts[3].classification == DELTA_RE_RENDER
        assert plan.counts()[DELTA_UNCHANGED] == SAMPLE - 1

        result = evaluator.evaluate(mutated)
        stats = result.delta_stats
        assert stats["mode"] == "store"
        assert stats["reused"] == SAMPLE - 1
        assert stats["recomputed"] == 1
        assert stats["epoch"] == stats["prior_epoch"] + 1
        scratch = run_full_evaluation(applications=mutated)
        assert_identical(
            canonical_evaluation(scratch),
            canonical_evaluation(result),
            "store delta vs scratch",
        )

    def test_store_delta_pooled_matches_scratch(self, applications, tmp_path):
        store_dir = tmp_path / "store"
        run_full_evaluation(applications=applications, store=ResultStore(store_dir))
        evaluator = DeltaEvaluator(store=store_dir, retry_backoff=BACKOFF)
        mutated = template_edit(applications, 1)
        result = evaluator.evaluate(mutated, workers=2)
        assert not result.failed
        scratch = run_full_evaluation(applications=mutated)
        assert_identical(
            canonical_evaluation(scratch),
            canonical_evaluation(result),
            "pooled store delta vs scratch",
        )

    def test_pre_fingerprint_journal_falls_back_to_result_keys(
        self, applications, tmp_path
    ):
        store_dir = tmp_path / "store"
        run_full_evaluation(applications=applications, store=ResultStore(store_dir))
        # Strip the fingerprint payloads, simulating a journal written
        # before records carried them; reseal so the records stay valid.
        journal = store_dir / SweepJournal.FILENAME
        lines = []
        for line in journal.read_text().splitlines():
            record = _unseal_line(line)
            assert record is not None
            record.pop("fp", None)
            lines.append(_seal_record(record))
        journal.write_text("".join(lines))

        evaluator = DeltaEvaluator(store=store_dir, retry_backoff=BACKOFF)
        plan = evaluator.plan(values_tweak(applications, 2))
        assert plan.charts[2].classification == DELTA_RE_RENDER
        assert plan.charts[2].reasons == ("result key moved",)
        assert plan.counts()[DELTA_UNCHANGED] == SAMPLE - 1


# ---------------------------------------------------------------------------
# Satellite: SweepJournal superseded-entry semantics under repeated
# resume+delta cycles.
# ---------------------------------------------------------------------------


class TestJournalSupersededEntries:
    def test_repeated_cycles_keep_one_live_record_per_chart(
        self, applications, tmp_path
    ):
        store_dir = tmp_path / "store"
        seed = run_full_evaluation(applications=applications, store=ResultStore(store_dir))
        assert seed.store_stats["journal_epoch"] == 1

        evaluator = DeltaEvaluator(store=store_dir, retry_backoff=BACKOFF)
        current = list(applications)
        for cycle in range(1, 4):
            current = values_tweak(current, cycle, salt=f"cycle-{cycle}")
            result = evaluator.evaluate(current, resume=True)
            assert not result.failed
            state = read_prior_state(store_dir)
            # Exactly one live record per chart key, every one healthy --
            # earlier generations were superseded, not accumulated.
            assert len(state.records) == len(current)
            assert set(state.records) == {uid(app) for app in current}
            assert set(state.completed()) == set(state.records)
            # The identity moved with the chart content, so each cycle
            # rotates the journal and advances the epoch.
            assert state.epoch == 1 + cycle
        assert (store_dir / (SweepJournal.FILENAME + ".prev")).exists()

    def test_pure_resume_continues_the_epoch(self, applications, tmp_path):
        store_dir = tmp_path / "store"
        run_full_evaluation(
            applications=applications[: SAMPLE // 2], store=ResultStore(store_dir)
        )
        resumed = run_full_evaluation(
            applications=applications[: SAMPLE // 2],
            store=ResultStore(store_dir),
            resume=True,
        )
        assert resumed.store_stats["journal_epoch"] == 1
        assert read_prior_state(store_dir).epoch == 1

    def test_superseded_records_reflect_the_latest_content(
        self, applications, tmp_path
    ):
        store_dir = tmp_path / "store"
        run_full_evaluation(applications=applications, store=ResultStore(store_dir))
        before = read_prior_state(store_dir)
        evaluator = DeltaEvaluator(store=store_dir, retry_backoff=BACKOFF)
        mutated = values_tweak(applications, 0)
        evaluator.evaluate(mutated)
        after = read_prior_state(store_dir)
        changed = uid(applications[0])
        assert after.records[changed]["fp"]["values"] != before.records[changed]["fp"]["values"]
        unchanged = uid(applications[1])
        assert after.records[unchanged]["fp"] == before.records[unchanged]["fp"]


# ---------------------------------------------------------------------------
# Satellite: lazy-index staleness -- same-length mutations must re-query
# fresh, removals must not leave orphaned keys.
# ---------------------------------------------------------------------------


class TestResultIndexStaleness:
    def test_same_length_mutation_reindexes(self, applications):
        result = run_full_evaluation(applications=applications[:3])
        removed = result.analyzed[0]
        replacement_source = run_full_evaluation(applications=[applications[5]])
        # Remove one entry and insert another: the length is unchanged,
        # which the pre-fix length-only check treated as "still fresh".
        assert result.report_for(*removed.key) is not None
        result.analyzed[0] = replacement_source.analyzed[0]
        assert result.report_for(*removed.key) is None
        assert result.report_for(*replacement_source.analyzed[0].key) is not None

    def test_removal_leaves_no_orphaned_keys(self, applications):
        result = run_full_evaluation(applications=applications[:3])
        gone = result.analyzed[1]
        dataset_before = [entry.key for entry in result.by_dataset(gone.application.dataset)]
        assert gone.key in dataset_before
        del result.analyzed[1]
        assert result.report_for(*gone.key) is None
        assert gone.key not in [
            entry.key for entry in result.by_dataset(gone.application.dataset)
        ]

    def test_invalidate_indexes_forces_a_rebuild(self, applications):
        result = run_full_evaluation(applications=applications[:2])
        result._index()
        result.invalidate_indexes()
        assert result._key_index is None
        assert result.report_for(*result.analyzed[0].key) is not None


# ---------------------------------------------------------------------------
# Satellite: classifier-fingerprint orthogonality -- each input flips
# exactly its own fingerprint and no others.
# ---------------------------------------------------------------------------

BASE_SETTINGS_FP = settings_fingerprint(AnalyzerSettings())

FINGERPRINT_MUTATIONS = {
    "values": lambda app: (values_tweak([app], 0)[0], BASE_SETTINGS_FP),
    "templates": lambda app: (template_edit([app], 0)[0], BASE_SETTINGS_FP),
    "behaviors": lambda app: (behavior_change([app], 0)[0], BASE_SETTINGS_FP),
    "settings": lambda app: (app, settings_fingerprint(AnalyzerSettings(seed=2026))),
}


class TestFingerprintSensitivity:
    @pytest.mark.parametrize("axis", sorted(FINGERPRINT_MUTATIONS))
    def test_each_input_flips_exactly_its_own_fingerprint(self, applications, axis):
        app = applications[0]
        base = classifier_fingerprints(app, BASE_SETTINGS_FP)
        mutated_app, mutated_fp = FINGERPRINT_MUTATIONS[axis](app)
        after = classifier_fingerprints(mutated_app, mutated_fp)
        for key in ("values", "templates", "behaviors", "settings"):
            if key == axis:
                assert after[key] != base[key], f"{axis} must flip {key}"
            else:
                assert after[key] == base[key], f"{axis} must not flip {key}"
        # The aggregate chart fingerprint moves exactly with render inputs.
        assert (after["chart"] != base["chart"]) == (axis in ("values", "templates"))

    def test_noop_rebuild_flips_nothing(self, applications):
        app = applications[0]
        base = classifier_fingerprints(app, BASE_SETTINGS_FP)
        rebuilt = noop_touch([app], 0)[0]
        assert classifier_fingerprints(rebuilt, BASE_SETTINGS_FP) == base


# ---------------------------------------------------------------------------
# Memo reuse across delta rounds: the LRU observation memo keeps reverted
# charts warm, and recency (not insertion age) governs eviction.
# ---------------------------------------------------------------------------


class TestMemoAcrossRounds:
    def test_reverted_chart_hits_the_observation_memo(self, applications):
        evaluator = DeltaEvaluator(retry_backoff=BACKOFF)
        first = evaluator.evaluate(applications)
        baseline = canonical_evaluation(first)
        evaluator.evaluate(values_tweak(applications, 2))
        hits_before = evaluator.analyzer.session.memo_stats()["hits"]
        reverted = evaluator.evaluate(noop_touch(applications, 2))
        assert evaluator.analyzer.session.memo_stats()["hits"] > hits_before
        assert_identical(baseline, canonical_evaluation(reverted), "reverted round")

    def test_memo_lru_prefers_recency_over_insertion_age(self):
        class _Observation:
            def __init__(self, app):
                self.app = app
                self.first = None
                self.second = None
                self.host_ports = set()

        memo = ObservationMemo(maxsize=2)
        memo.record("hot", _Observation("hot"))
        memo.record("cold", _Observation("cold"))
        assert memo.lookup("hot") is not None  # refresh: hot is now newest
        memo.record("fresh", _Observation("fresh"))  # evicts cold, not hot
        assert memo.lookup("hot") is not None
        assert memo.lookup("cold") is None
        assert memo.stats()["evictions"] == 1


# ---------------------------------------------------------------------------
# Full-catalogue randomized differential (acceptance criterion).
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestFullCatalogueDelta:
    def test_randomized_change_set_serial_and_pooled(self):
        applications = build_catalog()
        rng = random.Random(9025)
        evaluator = DeltaEvaluator(retry_backoff=BACKOFF)
        evaluator.evaluate(applications)

        mutated = list(applications)
        mutators = [values_tweak, template_edit, behavior_change]
        for edit in range(6):
            mutated = mutators[edit % len(mutators)](mutated, rng.randrange(len(mutated)))
        mutated = add_chart(mutated, 0)
        del mutated[rng.randrange(len(mutated) - 1)]

        scratch = run_full_evaluation(applications=mutated)
        canonical_scratch = canonical_evaluation(scratch)

        serial = evaluator.evaluate(mutated)
        assert not serial.failed
        assert serial.delta_stats["recomputed"] < len(mutated)
        assert_identical(
            canonical_scratch, canonical_evaluation(serial), "full-catalogue serial delta"
        )

        pooled_evaluator = DeltaEvaluator(retry_backoff=BACKOFF)
        pooled_evaluator.evaluate(applications, workers=4)
        pooled = pooled_evaluator.evaluate(mutated, workers=4)
        assert not pooled.failed
        assert_identical(
            canonical_scratch, canonical_evaluation(pooled), "full-catalogue pooled delta"
        )
