"""Chaos differential suite: the fault-isolation invariant, site by site.

The invariant under test: **under any injected fault plan, every healthy
chart's report is byte-identical to a fault-free run**, and a plan that
permanently poisons k charts yields exactly k :class:`AnalysisFailure`
records -- the sweep never aborts, never reorders, and never lets a broken
chart's failure leak into a neighbour's verdict.

Every fault site of :mod:`repro.faults` gets a scenario, including the two
that only exist on the parallel path: a worker killed mid-task (a genuine
``BrokenProcessPool`` with ``workers=2``) and a hung chart reaped by the
per-chart watchdog.  ``fail_fast=True`` is pinned as the reference
behaviour: first error raises, nothing is swallowed.
"""

import pytest

from repro import faults
from repro.datasets import build_catalog
from repro.experiments import run_full_evaluation
from repro.experiments.evaluation import (
    FAILURE_STAGE_TIMEOUT,
    FAILURE_STAGE_WORKER,
)
from tests.support.diffing import assert_identical, canonical_evaluation

#: Serial-path fault sites and the stage each failure must be attributed to.
SERIAL_SITES = [
    (faults.TEMPLATE_PARSE, "render"),
    (faults.STRUCTURED_ASSEMBLE, "render"),
    (faults.OBSERVE, "observe"),
    (faults.RULES, "rules"),
]

SAMPLE = 8
MAX_ATTEMPTS = 3
#: Near-zero backoff keeps the suite fast without changing any semantics.
BACKOFF = 0.001


@pytest.fixture(scope="module")
def applications():
    return build_catalog()[:SAMPLE]


@pytest.fixture(scope="module")
def baseline(applications):
    result = run_full_evaluation(applications=applications)
    assert not result.failed
    return canonical_evaluation(result)


def chart_key(applications, index: int) -> str:
    app = applications[index]
    return f"{app.dataset}/{app.name}"


def healthy_subset(baseline, skipped: set[int]):
    return [report for index, report in enumerate(baseline) if index not in skipped]


def poison_plan(site: str, charts: tuple[str, ...], kind: str = "error", **kw):
    """A plan that fails ``charts`` at ``site`` on every retry (poison)."""
    return faults.FaultPlan(
        faults.FaultSpec(site, charts=charts, attempts=99, kind=kind, **kw)
    )


def clear_render_caches() -> None:
    """Cold-start the render pipeline: compile-cache hits bypass the
    ``template.parse`` / ``structured.assemble`` sites, so scenarios that
    target them must start from empty caches."""
    from repro.helm.render_cache import shared_render_cache
    from repro.helm.structured import clear_skeleton_parse_memo
    from repro.helm.template import clear_template_cache

    clear_template_cache()
    clear_skeleton_parse_memo()
    shared_render_cache().clear()


class TestSerialFaultIsolation:
    @pytest.mark.parametrize("site,stage", SERIAL_SITES, ids=[s for s, _ in SERIAL_SITES])
    def test_one_poison_chart_quarantined_rest_identical(
        self, applications, baseline, site, stage
    ):
        # Victim 0: catalogue charts share template sources, so any later
        # chart would hit the compile cache and bypass ``template.parse``.
        victim = 0
        clear_render_caches()
        plan = poison_plan(site, (chart_key(applications, victim),))
        result = run_full_evaluation(
            applications=applications,
            fault_plan=plan,
            max_attempts=MAX_ATTEMPTS,
            retry_backoff=BACKOFF,
        )
        assert len(result.failed) == 1
        failure = result.failed[0]
        assert failure.unique_id == chart_key(applications, victim)
        assert failure.stage == stage
        assert failure.error_type == "InjectedFault"
        assert failure.attempts == MAX_ATTEMPTS
        assert failure.quarantined
        assert site in failure.message
        assert "InjectedFault" in failure.traceback
        assert_identical(
            healthy_subset(baseline, {victim}),
            canonical_evaluation(result),
            f"healthy charts under {site} fault",
        )

    def test_k_poison_charts_yield_exactly_k_failures(self, applications, baseline):
        victims = {1, 4, 6}
        plan = poison_plan(
            faults.RULES, tuple(chart_key(applications, index) for index in sorted(victims))
        )
        result = run_full_evaluation(
            applications=applications,
            fault_plan=plan,
            max_attempts=MAX_ATTEMPTS,
            retry_backoff=BACKOFF,
        )
        assert len(result.failed) == len(victims)
        assert [failure.unique_id for failure in result.failed] == [
            chart_key(applications, index) for index in sorted(victims)
        ]
        assert_identical(
            healthy_subset(baseline, victims),
            canonical_evaluation(result),
            "healthy charts under 3 poison charts",
        )

    def test_transient_fault_heals_on_retry_and_output_is_identical(
        self, applications, baseline
    ):
        victim = 2
        plan = faults.FaultPlan(
            faults.FaultSpec(
                faults.OBSERVE, charts=(chart_key(applications, victim),), attempts=2
            )
        )
        result = run_full_evaluation(
            applications=applications,
            fault_plan=plan,
            max_attempts=MAX_ATTEMPTS,
            retry_backoff=BACKOFF,
        )
        assert not result.failed
        assert result.analyzed[victim].attempts == 3
        assert all(
            entry.attempts == 1
            for index, entry in enumerate(result.analyzed)
            if index != victim
        )
        assert_identical(
            baseline, canonical_evaluation(result), "healed run vs fault-free"
        )

    def test_render_cache_corruption_detected_and_recomputed(
        self, applications, baseline
    ):
        from repro.helm.render_cache import shared_render_cache

        cache = shared_render_cache()
        corruptions_before = cache.corruptions
        plan = poison_plan(
            faults.RENDER_CACHE_READ,
            tuple(chart_key(applications, index) for index in range(SAMPLE)),
            kind="corrupt",
        )
        result = run_full_evaluation(
            applications=applications,
            fault_plan=plan,
            max_attempts=MAX_ATTEMPTS,
            retry_backoff=BACKOFF,
        )
        # Corruption is *detected*, never served: zero failures, reports
        # byte-identical, and the counter proves the detection path ran.
        assert not result.failed
        assert cache.corruptions > corruptions_before
        assert_identical(
            baseline, canonical_evaluation(result), "corrupted-cache run"
        )

    def test_render_cache_read_error_attributed_to_render(
        self, applications, baseline
    ):
        victim = 0
        plan = poison_plan(
            faults.RENDER_CACHE_READ, (chart_key(applications, victim),)
        )
        result = run_full_evaluation(
            applications=applications,
            fault_plan=plan,
            max_attempts=MAX_ATTEMPTS,
            retry_backoff=BACKOFF,
        )
        # The shared cache may be cold for this chart (a miss bypasses the
        # site); when warm, the failure must be attributed to render.
        for failure in result.failed:
            assert failure.stage == "render"
        skipped = {victim} if result.failed else set()
        assert_identical(
            healthy_subset(baseline, skipped),
            canonical_evaluation(result),
            "healthy charts under cache-read fault",
        )

    def test_fail_fast_pins_raise_on_first_error(self, applications):
        # fail_fast is the *reference* path: no fault scoping, no capture --
        # an unrestricted spec (charts=None) fires on the first chart.
        plan = poison_plan(faults.RULES, None)
        with pytest.raises(faults.InjectedFault):
            run_full_evaluation(
                applications=applications, fault_plan=plan, fail_fast=True
            )
        # And with no faults armed, fail_fast matches the robust default.
        fast = run_full_evaluation(applications=applications, fail_fast=True)
        robust = run_full_evaluation(applications=applications)
        assert_identical(
            canonical_evaluation(fast),
            canonical_evaluation(robust),
            "fail_fast vs robust, fault-free",
        )


@pytest.mark.slow
class TestParallelFaultIsolation:
    def test_worker_kill_breaks_pool_then_quarantines(self, applications, baseline):
        victim = 2
        plan = poison_plan(
            faults.WORKER_KILL, (chart_key(applications, victim),), kind="kill"
        )
        result = run_full_evaluation(
            applications=applications,
            workers=2,
            fault_plan=plan,
            max_attempts=MAX_ATTEMPTS,
            retry_backoff=BACKOFF,
        )
        assert len(result.failed) == 1
        failure = result.failed[0]
        assert failure.unique_id == chart_key(applications, victim)
        assert failure.stage == FAILURE_STAGE_WORKER
        assert failure.error_type == "BrokenProcessPool"
        assert failure.attempts == MAX_ATTEMPTS
        assert_identical(
            healthy_subset(baseline, {victim}),
            canonical_evaluation(result),
            "healthy charts after repeated pool breakage",
        )

    def test_worker_kill_heals_when_fault_expires(self, applications, baseline):
        victim = 2
        plan = faults.FaultPlan(
            faults.FaultSpec(
                faults.WORKER_KILL,
                charts=(chart_key(applications, victim),),
                attempts=1,
                kind="kill",
            )
        )
        result = run_full_evaluation(
            applications=applications,
            workers=2,
            fault_plan=plan,
            max_attempts=MAX_ATTEMPTS,
            retry_backoff=BACKOFF,
        )
        assert not result.failed
        assert result.analyzed[victim].attempts == 2
        assert_identical(
            baseline, canonical_evaluation(result), "pool healed run vs fault-free"
        )

    def test_hung_chart_reaped_by_watchdog(self, applications, baseline):
        victim = 1
        plan = poison_plan(
            faults.OBSERVE,
            (chart_key(applications, victim),),
            kind="hang",
            hang_s=30.0,
        )
        result = run_full_evaluation(
            applications=applications,
            workers=2,
            fault_plan=plan,
            max_attempts=2,
            retry_backoff=BACKOFF,
            chart_timeout=1.0,
        )
        assert len(result.failed) == 1
        failure = result.failed[0]
        assert failure.unique_id == chart_key(applications, victim)
        assert failure.stage == FAILURE_STAGE_TIMEOUT
        assert "watchdog" in failure.message
        assert_identical(
            healthy_subset(baseline, {victim}),
            canonical_evaluation(result),
            "healthy charts after watchdog reaping",
        )

    def test_parallel_error_faults_match_serial_fault_run(self, applications):
        victims = (chart_key(applications, 0), chart_key(applications, 5))
        plan = poison_plan(faults.RULES, victims)
        serial = run_full_evaluation(
            applications=applications,
            fault_plan=plan,
            max_attempts=MAX_ATTEMPTS,
            retry_backoff=BACKOFF,
        )
        parallel = run_full_evaluation(
            applications=applications,
            workers=2,
            fault_plan=plan,
            max_attempts=MAX_ATTEMPTS,
            retry_backoff=BACKOFF,
        )
        assert_identical(
            canonical_evaluation(serial),
            canonical_evaluation(parallel),
            "parallel vs serial under identical fault plan",
        )
        assert [failure.to_dict() for failure in serial.failed] == [
            failure.to_dict() for failure in parallel.failed
        ]
