"""Additional tests for report exports, CLI wiring and figure formatting."""

import pytest

from repro.cli import build_parser
from repro.core import AnalysisReport, Finding, MisconfigClass, TABLE_ORDER
from repro.core.report import DatasetSummary, EvaluationSummary
from repro.experiments import class_breakdown_csv, figure4a, format_figure4a


def _summary_with(*counts: tuple[str, str, int]) -> EvaluationSummary:
    summary = EvaluationSummary()
    for name, dataset, total in counts:
        report = AnalysisReport(application=name, dataset=dataset)
        report.add(
            Finding(misconfig_class=MisconfigClass.M1, application=name,
                    resource=f"Deployment/default/{name}", message="m", port=10000 + index)
            for index in range(total)
        )
        summary.add(report)
    return summary


class TestDatasetSummaryRow:
    def test_row_follows_table_column_order(self):
        summary = DatasetSummary(dataset="DS", total_applications=3, affected_applications=2,
                                 counts={cls: 0 for cls in TABLE_ORDER})
        summary.counts[MisconfigClass.M6] = 4
        row = summary.row()
        assert row[0] == "DS"
        assert row[1] == "2 / 3"
        assert row[2 + TABLE_ORDER.index(MisconfigClass.M6)] == 4
        assert len(row) == 2 + len(TABLE_ORDER)

    def test_average_handles_empty_dataset(self):
        empty = DatasetSummary(dataset="DS")
        assert empty.average_per_application == 0.0


class TestCsvExport:
    def test_csv_has_header_and_one_row_per_application(self):
        summary = _summary_with(("a", "DS1", 2), ("b", "DS2", 0))
        csv_text = class_breakdown_csv(summary)
        lines = csv_text.splitlines()
        assert lines[0].startswith("application,dataset,total,types")
        assert len(lines) == 3
        assert lines[1].startswith("a,DS1,2,1")
        assert lines[2].startswith("b,DS2,0,0")


class TestFigure4aFormatting:
    def test_empty_summary_renders_without_errors(self):
        distribution = figure4a(EvaluationSummary())
        text = format_figure4a(distribution)
        assert "0.0%" in text

    def test_concentration_shares_are_fractions(self):
        summary = _summary_with(("a", "DS", 12), ("b", "DS", 1), ("c", "DS", 0))
        distribution = figure4a(summary)
        assert distribution.share_apps_ge_10 == pytest.approx(1 / 3)
        assert distribution.share_findings_ge_10 == pytest.approx(12 / 13)


class TestCliParser:
    def test_parser_knows_all_subcommands(self):
        parser = build_parser()
        for command in ("catalog", "table2", "table3", "figure3", "figure4a", "figure4b"):
            assert callable(parser.parse_args([command]).handler)
        assert callable(parser.parse_args(["analyze", "x.yaml"]).handler)
        assert parser.parse_args(["attack", "concourse"]).scenario == "concourse"

    def test_attack_requires_valid_scenario(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["attack", "unknown-scenario"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
