"""Tests for the experiment harnesses (run on small datasets for speed)."""

import pytest

from repro.datasets import build_dataset, expected_dataset_counts
from repro.experiments import (
    PAPER_TABLE3,
    compute_stats,
    figure3a,
    figure3b,
    figure4a,
    format_figure3,
    format_figure4a,
    format_stats,
    paper_row,
    run_comparison,
    run_full_evaluation,
    run_netpol_impact,
)


@pytest.fixture(scope="module")
def small_evaluation():
    """Evaluation over the two smallest datasets (CNCF + EEA, 29 charts)."""
    applications = build_dataset("CNCF") + build_dataset("EEA")
    return run_full_evaluation(applications=applications)


class TestParallelEvaluation:
    def test_parallel_path_matches_serial_in_order_and_findings(self, small_evaluation):
        applications = small_evaluation.applications()
        parallel = run_full_evaluation(applications=applications, workers=4)
        assert [entry.key for entry in parallel.analyzed] == [
            entry.key for entry in small_evaluation.analyzed
        ]
        for serial_entry, parallel_entry in zip(small_evaluation.analyzed, parallel.analyzed):
            assert sorted(f.dedupe_key() for f in parallel_entry.report.findings) == sorted(
                f.dedupe_key() for f in serial_entry.report.findings
            )

    def test_parallel_netpol_impact_matches_serial(self):
        applications = build_dataset("CNCF")
        serial = run_netpol_impact(applications=applications)
        parallel = run_netpol_impact(applications=applications, workers=4)
        assert [
            (entry.application, entry.affected, entry.reachable_pods)
            for entry in parallel.applications
        ] == [
            (entry.application, entry.affected, entry.reachable_pods)
            for entry in serial.applications
        ]


class TestEvaluationPipeline:
    def test_every_application_is_analyzed(self, small_evaluation):
        assert len(small_evaluation.analyzed) == 29

    def test_dataset_counts_match_table2_rows(self, small_evaluation):
        for dataset in ("CNCF", "EEA"):
            summary = small_evaluation.summary.dataset_summary(dataset)
            got = {cls.value: count for cls, count in summary.counts.items() if count}
            expected = {k: v for k, v in expected_dataset_counts(dataset).items() if v}
            assert got == expected

    def test_affected_counts(self, small_evaluation):
        assert small_evaluation.summary.dataset_summary("CNCF").affected_applications == 7
        assert small_evaluation.summary.dataset_summary("EEA").affected_applications == 8

    def test_report_lookup(self, small_evaluation):
        assert small_evaluation.report_for("CNCF", "cert-manager") is not None
        assert small_evaluation.report_for("CNCF", "missing") is None

    def test_use_case_grouping(self, small_evaluation):
        assert len(small_evaluation.by_use_case("internal")) == 19
        assert len(small_evaluation.by_use_case("production")) == 10


class TestStats:
    def test_headline_stats(self, small_evaluation):
        stats = compute_stats(small_evaluation)
        assert stats.total_applications == 29
        assert stats.affected_applications == 15
        assert stats.use_case("internal").applications == 19
        assert stats.use_case("production").average > stats.use_case("internal").average

    def test_format_stats_mentions_totals(self, small_evaluation):
        text = format_stats(compute_stats(small_evaluation))
        assert "applications analyzed" in text
        assert "internal" in text


class TestFigures:
    def test_figure3a_ranking_is_sorted(self, small_evaluation):
        ranked = figure3a(small_evaluation.summary, limit=5)
        totals = [entry.total for entry in ranked]
        assert totals == sorted(totals, reverse=True)
        assert all("(" in entry.label for entry in ranked)

    def test_figure3b_ranks_by_types(self, small_evaluation):
        ranked = figure3b(small_evaluation.summary, limit=5)
        types = [entry.types for entry in ranked]
        assert types == sorted(types, reverse=True)

    def test_format_figure3_renders_bars(self, small_evaluation):
        text = format_figure3(figure3a(small_evaluation.summary, limit=3))
        assert "#" in text

    def test_figure4a_distribution(self, small_evaluation):
        distribution = figure4a(small_evaluation.summary)
        assert len(distribution.per_application) == 29
        assert distribution.total == small_evaluation.summary.total_misconfigurations
        assert 0 <= distribution.share_apps_ge_10 <= 1
        text = format_figure4a(distribution)
        assert "misconfigurations" in text


class TestNetpolImpact:
    def test_rows_cover_datasets_with_policies(self):
        applications = build_dataset("EEA")
        impact = run_netpol_impact(applications=applications)
        rows = {row.dataset: row for row in impact.rows()}
        assert rows["EEA"].policies_defined == 19
        assert rows["EEA"].policies_enabled_by_default == 19
        # Loose policies leave some applications affected, strict ones do not.
        assert 0 < rows["EEA"].affected <= 8

    def test_banzai_has_no_policies(self):
        applications = build_dataset("Banzai Cloud")[:5]
        impact = run_netpol_impact(applications=applications)
        assert all(row.policies_defined == 0 for row in impact.rows())

    def test_format_text_includes_header(self):
        applications = build_dataset("EEA")[:3]
        impact = run_netpol_impact(applications=applications)
        assert "Reachable pods" in impact.format_text()


class TestTable3:
    @pytest.fixture(scope="class")
    def comparison(self):
        return run_comparison()

    def test_twelve_rows(self, comparison):
        assert len(comparison.rows) == 12

    def test_our_solution_detects_everything(self, comparison):
        ours = comparison.row_for("Our solution")
        assert all(outcome == "found" for outcome in ours.outcomes.values())

    def test_third_party_matrix_matches_paper(self, comparison):
        symbols = {"found": "Y", "partial": "~", "missed": "x", "n/a": "-"}
        for row in comparison.rows:
            if row.tool == "Our solution":
                continue
            expected = paper_row(row.tool)
            got = {cls.value: symbols[outcome] for cls, outcome in row.outcomes.items()}
            assert got == expected, f"{row.tool} deviates from the paper"

    def test_no_third_party_tool_detects_label_collisions_fully(self, comparison):
        for row in comparison.rows:
            if row.tool == "Our solution":
                continue
            assert row.outcomes[next(c for c in row.outcomes if c.value == "M4A")] != "found"

    def test_format_text_contains_legend(self, comparison):
        assert "not applicable" in comparison.format_text()

    def test_paper_table_is_complete(self):
        for tool, row in PAPER_TABLE3.items():
            assert len(row) == 13, tool
