"""Durable-sweep differential and chaos suite for the result store.

The invariant under test: **the store changes how fast a sweep runs, never
what it computes**.  Every scenario reduces to byte-identity against a
store-free baseline via :func:`tests.support.diffing.canonical_evaluation`:

* store off == cold store == warm store,
* an interrupted sweep resumed finishes with identical output,
* a writer killed between fsync and rename (a genuine ``kill -9``
  mid-publish) leaves no torn entry and loses only unpublished charts,
* every corruption mode (truncation, bit-flip, version skew) is detected,
  counted, evicted and recomputed -- never served, never fatal,
* two concurrent sweeps over one store directory both succeed with
  identical output and leave only verified entries behind,
* the sweep journal drops torn tails and rotates on identity mismatch.

The fast tests run over an 8-chart sample; the ``slow``-marked full-catalogue
differential covers all 290 charts (acceptance criterion for PR 7).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import faults
from repro.datasets import build_catalog
from repro.experiments import run_full_evaluation
from repro.store import KIND_RESULT, ResultStore, SweepJournal, store_key
from tests.support.diffing import (
    assert_identical,
    canonical_evaluation,
    canonical_json,
    canonical_report,
)

SAMPLE = 8
MAX_ATTEMPTS = 3
BACKOFF = 0.001

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


@pytest.fixture(scope="module")
def applications():
    return build_catalog()[:SAMPLE]


@pytest.fixture(scope="module")
def baseline(applications):
    result = run_full_evaluation(applications=applications)
    assert not result.failed
    return canonical_evaluation(result)


def chart_key(applications, index: int) -> str:
    app = applications[index]
    return f"{app.dataset}/{app.name}"


def subprocess_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestStoreDifferential:
    def test_cold_then_warm_store_byte_identical(self, applications, baseline, tmp_path):
        store = ResultStore(tmp_path / "store")
        cold = run_full_evaluation(applications=applications, store=store)
        assert not cold.failed
        assert cold.store_stats["computed"] == SAMPLE
        assert cold.store_stats["loaded"] == 0
        assert_identical(baseline, canonical_evaluation(cold), "cold store vs store-off")

        warm_store = ResultStore(tmp_path / "store")
        warm = run_full_evaluation(applications=applications, store=warm_store)
        assert not warm.failed
        assert warm.store_stats["loaded"] == SAMPLE
        assert warm.store_stats["computed"] == 0
        assert_identical(baseline, canonical_evaluation(warm), "warm store vs store-off")

    def test_warm_store_identical_on_parallel_path(self, applications, baseline, tmp_path):
        store = ResultStore(tmp_path / "store")
        cold = run_full_evaluation(applications=applications, workers=2, store=store)
        assert not cold.failed
        assert_identical(baseline, canonical_evaluation(cold), "pool cold store")
        warm = run_full_evaluation(
            applications=applications, workers=2, store=ResultStore(tmp_path / "store")
        )
        assert warm.store_stats["loaded"] == SAMPLE
        assert_identical(baseline, canonical_evaluation(warm), "pool warm store")

    def test_partial_sweep_resumed_is_identical(self, applications, baseline, tmp_path):
        store_dir = tmp_path / "store"
        partial = run_full_evaluation(
            applications=applications[: SAMPLE // 2], store=ResultStore(store_dir)
        )
        assert partial.store_stats["computed"] == SAMPLE // 2
        resumed = run_full_evaluation(
            applications=applications, store=ResultStore(store_dir), resume=True
        )
        assert not resumed.failed
        assert resumed.store_stats["loaded"] == SAMPLE // 2
        assert resumed.store_stats["computed"] == SAMPLE - SAMPLE // 2
        assert_identical(baseline, canonical_evaluation(resumed), "resumed sweep")

    def test_resume_requires_a_store(self, applications):
        with pytest.raises(ValueError):
            run_full_evaluation(applications=applications, resume=True)

    @pytest.mark.slow
    def test_full_catalogue_store_differential(self, tmp_path):
        applications = build_catalog()
        baseline = run_full_evaluation(applications=applications)
        assert not baseline.failed
        cold = run_full_evaluation(
            applications=applications, store=ResultStore(tmp_path / "store")
        )
        warm = run_full_evaluation(
            applications=applications, store=ResultStore(tmp_path / "store")
        )
        assert warm.store_stats["loaded"] == len(applications)
        assert_identical(
            canonical_evaluation(baseline),
            canonical_evaluation(cold),
            "full-catalogue cold store",
        )
        assert_identical(
            canonical_evaluation(baseline),
            canonical_evaluation(warm),
            "full-catalogue warm store",
        )


#: Child process: runs a durable sweep with a ``kill`` fault armed at the
#: ``store.write`` site for one victim chart -- it dies via ``os._exit(3)``
#: between the temp-file fsync and the rename, exactly like a power cut.
KILL_CHILD = """
import sys
from repro import faults
from repro.datasets import build_catalog
from repro.experiments import run_full_evaluation

store_dir, victim, sample = sys.argv[1], sys.argv[2], int(sys.argv[3])
faults.mark_pool_worker()  # enable genuine os._exit kills in this process
plan = faults.FaultPlan(
    faults.FaultSpec(faults.STORE_WRITE, charts=(victim,), attempts=99, kind="kill")
)
run_full_evaluation(
    applications=build_catalog()[:sample], store=store_dir, fault_plan=plan
)
sys.exit(0)  # unreachable: the kill fires during the victim's publish
"""

#: Child process: one full durable sweep against a shared store directory;
#: writes the canonical reports as JSON so the parent can diff them.
CONCURRENT_CHILD = """
import json
import sys
from repro.datasets import build_catalog
from repro.experiments import run_full_evaluation

store_dir, out_path, sample = sys.argv[1], sys.argv[2], int(sys.argv[3])
result = run_full_evaluation(applications=build_catalog()[:sample], store=store_dir)
assert not result.failed
payload = [entry.report.to_dict() for entry in result.analyzed]
with open(out_path, "w", encoding="utf-8") as handle:
    json.dump(payload, handle, sort_keys=True, default=str)
"""


class TestCrashAndConcurrency:
    def test_kill_nine_mid_publish_then_resume(self, applications, baseline, tmp_path):
        store_dir = tmp_path / "store"
        victim = SAMPLE // 2
        completed = subprocess.run(
            [
                sys.executable,
                "-c",
                KILL_CHILD,
                str(store_dir),
                chart_key(applications, victim),
                str(SAMPLE),
            ],
            capture_output=True,
            text=True,
            env=subprocess_env(),
            cwd=str(REPO_ROOT),
            timeout=300,
        )
        assert completed.returncode == 3, completed.stderr
        # The serial sweep published charts 0..victim-1 before dying; no
        # entry the dead writer left behind may be torn.
        store = ResultStore(store_dir)
        scan = store.verify_all()
        assert scan["defective"] == 0
        assert scan["healthy"] >= victim
        resumed = run_full_evaluation(
            applications=applications, store=store, resume=True
        )
        assert not resumed.failed
        assert resumed.store_stats["loaded"] == victim
        assert resumed.store_stats["computed"] == SAMPLE - victim
        assert resumed.store_stats["journal_rotated"] is None
        assert_identical(baseline, canonical_evaluation(resumed), "kill-9 resume")

    def test_two_concurrent_sweeps_share_one_store(self, baseline, tmp_path):
        store_dir = tmp_path / "store"
        outputs = [tmp_path / "a.json", tmp_path / "b.json"]
        children = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    CONCURRENT_CHILD,
                    str(store_dir),
                    str(out),
                    str(SAMPLE),
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=subprocess_env(),
                cwd=str(REPO_ROOT),
            )
            for out in outputs
        ]
        for child in children:
            _, stderr = child.communicate(timeout=300)
            assert child.returncode == 0, stderr
        payloads = [json.loads(out.read_text(encoding="utf-8")) for out in outputs]
        # Both racers computed identical reports, both matching the
        # store-free baseline (default=str below mirrors the children's
        # serialization so the canonical forms are comparable).
        assert canonical_json(payloads[0]) == canonical_json(payloads[1])
        assert canonical_json(payloads[0]) == canonical_json(
            json.loads(json.dumps(baseline, sort_keys=True, default=str))
        )
        # Rename-wins left only verified entries -- no torn files.
        scan = ResultStore(store_dir).verify_all()
        assert scan["defective"] == 0
        assert scan["healthy"] > 0
        warm = run_full_evaluation(
            applications=build_catalog()[:SAMPLE], store=ResultStore(store_dir)
        )
        assert warm.store_stats["loaded"] == SAMPLE
        assert_identical(baseline, canonical_evaluation(warm), "post-race warm sweep")


class TestStoreChaos:
    @pytest.mark.parametrize("mode", faults.CORRUPTION_MODES)
    def test_corruption_detected_evicted_recomputed(
        self, applications, baseline, tmp_path, mode
    ):
        store_dir = tmp_path / f"store-{mode}"
        prime = run_full_evaluation(applications=applications, store=ResultStore(store_dir))
        assert not prime.failed
        victims = tuple(chart_key(applications, index) for index in range(SAMPLE))
        plan = faults.FaultPlan(
            faults.FaultSpec(
                faults.STORE_READ,
                charts=victims,
                attempts=99,
                kind="corrupt",
                corruption=mode,
            )
        )
        store = ResultStore(store_dir)
        result = run_full_evaluation(
            applications=applications,
            store=store,
            fault_plan=plan,
            max_attempts=MAX_ATTEMPTS,
            retry_backoff=BACKOFF,
        )
        assert not result.failed
        stats = store.stats()
        if mode == faults.CORRUPT_VERSION:
            assert stats["version_skew"] >= 1
        else:
            assert stats["corruptions"] >= 1
        assert stats["evictions"] >= 1
        assert_identical(
            baseline, canonical_evaluation(result), f"{mode}-corrupted store"
        )
        # The sweep republished what it evicted: a fresh fault-free sweep
        # is warm again.
        warm = run_full_evaluation(applications=applications, store=ResultStore(store_dir))
        assert warm.store_stats["loaded"] == SAMPLE
        assert_identical(baseline, canonical_evaluation(warm), f"re-warmed after {mode}")

    def test_write_failures_degrade_to_unstored(self, applications, baseline, tmp_path):
        store = ResultStore(tmp_path / "store")
        plan = faults.FaultPlan(
            faults.FaultSpec(faults.STORE_WRITE, charts=None, attempts=99)
        )
        result = run_full_evaluation(
            applications=applications,
            store=store,
            fault_plan=plan,
            max_attempts=MAX_ATTEMPTS,
            retry_backoff=BACKOFF,
        )
        # Every publish failed; every computation still succeeded.
        assert not result.failed
        assert result.store_stats["computed"] == SAMPLE
        assert result.store_stats["unstored"] == SAMPLE
        assert store.stats()["write_failures"] >= SAMPLE
        assert store.verify_all()["defective"] == 0
        assert_identical(baseline, canonical_evaluation(result), "unstored sweep")

    def test_read_errors_degrade_to_recompute(self, applications, baseline, tmp_path):
        store_dir = tmp_path / "store"
        run_full_evaluation(applications=applications, store=ResultStore(store_dir))
        store = ResultStore(store_dir)
        plan = faults.FaultPlan(
            faults.FaultSpec(faults.STORE_READ, charts=None, attempts=99)
        )
        result = run_full_evaluation(
            applications=applications,
            store=store,
            fault_plan=plan,
            max_attempts=MAX_ATTEMPTS,
            retry_backoff=BACKOFF,
        )
        assert not result.failed
        assert result.store_stats["loaded"] == 0
        assert result.store_stats["computed"] == SAMPLE
        assert store.stats()["read_errors"] >= 1
        assert_identical(baseline, canonical_evaluation(result), "read-error sweep")


class TestJournal:
    IDENTITY = store_key(KIND_RESULT, "journal-identity")

    def test_torn_tail_dropped_on_resume(self, tmp_path):
        journal = SweepJournal(tmp_path, self.IDENTITY)
        assert journal.begin(resume=True) == {}
        journal.record("org/app-a", "ok", "key-a")
        journal.record("org/app-b", "ok", "key-b")
        journal.close()
        # A writer died mid-append: the tail line has no valid seal.
        with open(tmp_path / SweepJournal.FILENAME, "a", encoding="utf-8") as handle:
            handle.write('{"rec": {"type": "chart", "chart": "org/app-c"')
        resumed = SweepJournal(tmp_path, self.IDENTITY)
        completed = resumed.begin(resume=True)
        resumed.close()
        assert set(completed) == {"org/app-a", "org/app-b"}
        assert resumed.dropped_lines == 1
        assert resumed.rotated_reason is None

    def test_identity_mismatch_rotates(self, tmp_path):
        journal = SweepJournal(tmp_path, self.IDENTITY)
        journal.begin(resume=False)
        journal.record("org/app-a", "ok", "key-a")
        journal.close()
        other = SweepJournal(tmp_path, store_key(KIND_RESULT, "different-catalogue"))
        completed = other.begin(resume=True)
        other.close()
        assert completed == {}
        assert "identity mismatch" in other.rotated_reason
        assert (tmp_path / (SweepJournal.FILENAME + ".prev")).exists()

    def test_fresh_sweep_supersedes_existing_journal(self, tmp_path):
        journal = SweepJournal(tmp_path, self.IDENTITY)
        journal.begin(resume=False)
        journal.record("org/app-a", "ok", "key-a")
        journal.close()
        fresh = SweepJournal(tmp_path, self.IDENTITY)
        completed = fresh.begin(resume=False)
        fresh.close()
        assert completed == {}
        assert fresh.rotated_reason == SweepJournal.ROTATED_FRESH


class TestObservationMemo:
    def test_memo_hits_in_process_and_via_store(self, applications, tmp_path):
        from repro.core import AnalyzerSettings, MisconfigurationAnalyzer

        app = applications[0]
        settings = AnalyzerSettings(store_dir=str(tmp_path / "store"))
        analyzer = MisconfigurationAnalyzer(settings=settings)
        first = analyzer.analyze_chart(app.chart, behaviors=app.behaviors)
        hits_before = analyzer.session.memo_stats()["hits"]
        second = analyzer.analyze_chart(app.chart, behaviors=app.behaviors)
        assert analyzer.session.memo_stats()["hits"] == hits_before + 1
        assert_identical(
            canonical_report(first), canonical_report(second), "in-process memo"
        )
        # A brand-new analyzer sharing the store directory hits the *store*
        # copy: the memo promotes across process lifetimes.
        fresh = MisconfigurationAnalyzer(settings=settings)
        third = fresh.analyze_chart(app.chart, behaviors=app.behaviors)
        assert fresh.session.memo_stats()["store_hits"] >= 1
        assert_identical(
            canonical_report(first), canonical_report(third), "store-promoted memo"
        )
