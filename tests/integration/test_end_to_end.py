"""Integration tests: full pipeline, Table 2 reproduction, CLI entry points."""

import pytest

from repro.cli import main as cli_main
from repro.core import MisconfigClass, MisconfigurationAnalyzer
from repro.datasets import (
    DATASET_ORDER,
    TABLE2_TOTAL_MISCONFIGURATIONS,
    build_catalog,
    build_dataset,
    expected_dataset_counts,
)
from repro.experiments import run_full_evaluation
from repro.helm import render_chart
from repro.k8s import dump_yaml


class TestChartToFindingsPipeline:
    def test_chart_render_install_probe_analyze(self, misconfigured_application, analyzer):
        """The full hybrid pipeline on one chart behaves consistently."""
        report = analyzer.analyze_chart(
            misconfigured_application.chart,
            behaviors=misconfigured_application.behaviors,
            dataset="fixtures",
        )
        expected = misconfigured_application.plan.expected_counts()
        got = {cls.value: count for cls, count in report.count_by_class().items()}
        for name, count in expected.items():
            if name == "M4*":
                continue
            assert got.get(name, 0) == count, f"{name}: expected {count}, got {got.get(name)}"

    def test_analysis_is_deterministic(self, misconfigured_application):
        reports = []
        for _ in range(2):
            analyzer = MisconfigurationAnalyzer()
            reports.append(
                analyzer.analyze_chart(
                    misconfigured_application.chart, behaviors=misconfigured_application.behaviors
                )
            )
        first = sorted(f.dedupe_key() for f in reports[0].findings)
        second = sorted(f.dedupe_key() for f in reports[1].findings)
        assert first == second


@pytest.mark.slow
class TestTable2Reproduction:
    """Exact reproduction of every Table 2 row (the paper's main result)."""

    @pytest.fixture(scope="class")
    def evaluation(self):
        return run_full_evaluation()

    @pytest.mark.parametrize("dataset", DATASET_ORDER)
    def test_dataset_row_matches_paper(self, evaluation, dataset):
        summary = evaluation.summary.dataset_summary(dataset)
        got = {cls.value: count for cls, count in summary.counts.items()}
        for name, count in expected_dataset_counts(dataset).items():
            assert got.get(name, 0) == count, f"{dataset} {name}"

    def test_grand_total_is_634(self, evaluation):
        assert evaluation.summary.total_misconfigurations == TABLE2_TOTAL_MISCONFIGURATIONS

    def test_259_applications_affected(self, evaluation):
        assert evaluation.summary.affected_applications == 259

    def test_most_common_classes_are_m6_m1_m3(self, evaluation):
        counts = evaluation.summary.counts_by_class()
        ranked = sorted(counts, key=counts.get, reverse=True)
        assert ranked[0] is MisconfigClass.M6
        assert ranked[1] is MisconfigClass.M1
        assert ranked[2] is MisconfigClass.M3

    def test_sharing_charts_more_misconfigured_than_internal(self, evaluation):
        from repro.experiments import compute_stats

        stats = compute_stats(evaluation)
        assert stats.use_case("sharing").average > 2 * stats.use_case("internal").average
        assert stats.use_case("production").average > 2 * stats.use_case("internal").average

    def test_top_application_is_kube_prometheus_stack(self, evaluation):
        top = evaluation.summary.top_by_count(1)[0]
        assert top.application == "kube-prometheus-stack"
        assert top.total >= 15


class TestCLI:
    def test_analyze_command_reports_findings(self, tmp_path, misconfigured_application, capsys):
        rendered = render_chart(misconfigured_application.chart)
        manifest = tmp_path / "manifests.yaml"
        manifest.write_text(dump_yaml(rendered.objects), encoding="utf-8")
        exit_code = cli_main(["analyze", str(manifest)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "[M6]" in output
        assert "[M7]" in output

    def test_analyze_strict_mode_fails_on_findings(self, tmp_path, misconfigured_application):
        rendered = render_chart(misconfigured_application.chart)
        manifest = tmp_path / "manifests.yaml"
        manifest.write_text(dump_yaml(rendered.objects), encoding="utf-8")
        assert cli_main(["analyze", str(manifest), "--strict"]) == 1

    def test_attack_commands(self, capsys):
        assert cli_main(["attack", "concourse"]) == 0
        assert cli_main(["attack", "thanos"]) == 0
        output = capsys.readouterr().out
        assert "attack succeeded" in output
        assert "impersonation succeeded" in output

    def test_table3_command(self, capsys):
        assert cli_main(["table3"]) == 0
        assert "Our solution" in capsys.readouterr().out


class TestSmallCatalogEndToEnd:
    def test_wikimedia_dataset_matches_row(self):
        result = run_full_evaluation(applications=build_dataset("Wikimedia"))
        summary = result.summary.dataset_summary("Wikimedia")
        got = {cls.value: count for cls, count in summary.counts.items() if count}
        expected = {k: v for k, v in expected_dataset_counts("Wikimedia").items() if v}
        assert got == expected
        assert summary.affected_applications == 10

    def test_catalog_subset_builds_consistently(self):
        apps = build_catalog(("CNCF",))
        assert len(apps) == 10
        assert all(app.dataset == "CNCF" for app in apps)
