"""Unit tests for the detection rules, each exercised in isolation.

Every test builds a minimal application via the dataset builder (so that the
declared/runtime mismatch is realistic) or assembles objects by hand, then
checks that exactly the expected rule fires.
"""

import pytest

from repro.cluster import BehaviorRegistry, Cluster
from repro.core import AnalysisContext, MisconfigClass, MisconfigurationAnalyzer
from repro.core.rules import (
    ComputeUnitCollisionRule,
    ComputeUnitSubsetCollisionRule,
    DeclaredClosedPortsRule,
    DynamicPortsRule,
    HeadlessServicePortUnavailableRule,
    HostNetworkRule,
    LackOfNetworkPoliciesRule,
    ServiceLabelCollisionRule,
    ServiceTargetsUndeclaredPortRule,
    ServiceTargetsUnopenedPortRule,
    ServiceWithoutTargetRule,
    UndeclaredOpenPortsRule,
    default_rules,
)
from repro.datasets import InjectionPlan, build_application
from repro.helm import render_chart
from repro.k8s import Inventory, allow_ports_policy, deny_all_policy, equality_selector
from repro.probe import RuntimeScanner
from tests.conftest import make_deployment, make_service


def analyze_plan(plan: InjectionPlan, archetype: str = "web"):
    """Build an app from a plan and return its hybrid analysis report."""
    app = build_application("rule-test", "Test Org", plan, archetype=archetype)
    analyzer = MisconfigurationAnalyzer()
    return analyzer.analyze_chart(app.chart, behaviors=app.behaviors)


def context_for(objects, observation=None, disabled_policies=False) -> AnalysisContext:
    return AnalysisContext(
        application="manual",
        inventory=Inventory(objects),
        observation=observation,
        network_policies_available_but_disabled=disabled_policies,
    )


def observe(objects, behaviors=None, app_name="manual"):
    cluster = Cluster(name="rules", worker_count=2, behaviors=behaviors or BehaviorRegistry(), seed=9)
    cluster.install(list(objects), app_name=app_name)
    return RuntimeScanner(cluster).observe(app_name)


class TestPortRules:
    def test_m1_detects_each_undeclared_open_port(self):
        report = analyze_plan(InjectionPlan(m1=3))
        assert len(report.of_class(MisconfigClass.M1)) == 3
        ports = {finding.port for finding in report.of_class(MisconfigClass.M1)}
        assert len(ports) == 3

    def test_m1_not_reported_for_declared_ports(self):
        report = analyze_plan(InjectionPlan())
        assert report.of_class(MisconfigClass.M1) == []

    def test_m1_excludes_dynamic_ports(self):
        report = analyze_plan(InjectionPlan(m2=1))
        assert report.of_class(MisconfigClass.M1) == []
        assert len(report.of_class(MisconfigClass.M2)) == 1

    def test_m2_reported_once_per_compute_unit(self):
        report = analyze_plan(InjectionPlan(m2=2), archetype="pipeline")
        assert len(report.of_class(MisconfigClass.M2)) == 2

    def test_m3_detects_declared_but_closed_ports(self):
        report = analyze_plan(InjectionPlan(m3=2))
        assert len(report.of_class(MisconfigClass.M3)) == 2

    def test_port_rules_require_runtime_observation(self):
        context = context_for([make_deployment()])
        assert not UndeclaredOpenPortsRule().applicable(context)
        assert not DynamicPortsRule().applicable(context)
        assert not DeclaredClosedPortsRule().applicable(context)

    def test_m3_skips_units_without_running_pods(self):
        deployment = make_deployment(ports=[8080])
        observation = observe([deployment])
        # A second workload that never started any pod must not produce M3.
        other = make_deployment("other", labels={"app": "other"}, ports=[9999])
        context = context_for([deployment, other], observation)
        findings = DeclaredClosedPortsRule().evaluate(context)
        assert findings == []


class TestLabelRules:
    def test_m4a_detects_identical_label_sets(self):
        report = analyze_plan(InjectionPlan(m4a=1))
        findings = report.of_class(MisconfigClass.M4A)
        assert len(findings) == 1
        assert len(findings[0].related_resources) >= 1

    def test_m4a_one_finding_per_collision_group(self):
        report = analyze_plan(InjectionPlan(m4a=2))
        assert len(report.of_class(MisconfigClass.M4A)) == 2

    def test_m4a_ignores_unique_labels(self):
        context = context_for([make_deployment("a", labels={"app": "a"}),
                               make_deployment("b", labels={"app": "b"})])
        assert ComputeUnitCollisionRule().evaluate(context) == []

    def test_m4b_detects_multiple_services_on_one_unit(self):
        report = analyze_plan(InjectionPlan(m4b=1))
        assert len(report.of_class(MisconfigClass.M4B)) == 1

    def test_m4b_single_service_is_fine(self):
        context = context_for([make_deployment(), make_service()])
        assert ServiceLabelCollisionRule().evaluate(context) == []

    def test_m4c_detects_subset_collision(self):
        report = analyze_plan(InjectionPlan(m4c=1))
        assert len(report.of_class(MisconfigClass.M4C)) == 1

    def test_m4c_skips_identical_label_sets(self):
        # Two units with the exact same labels are an M4A case, not M4C.
        objects = [
            make_deployment("a", labels={"app": "shared"}),
            make_deployment("b", labels={"app": "shared"}),
            make_service("svc", selector={"app": "shared"}),
        ]
        assert ComputeUnitSubsetCollisionRule().evaluate(context_for(objects)) == []


class TestServiceRules:
    def test_m5a_detects_unopened_target(self):
        report = analyze_plan(InjectionPlan(m5a=1))
        assert len(report.of_class(MisconfigClass.M5A)) == 1
        assert report.of_class(MisconfigClass.M5B) == []

    def test_m5b_detects_undeclared_but_open_target(self):
        report = analyze_plan(InjectionPlan(m1=1, m5b=1))
        assert len(report.of_class(MisconfigClass.M5B)) == 1
        # The open-but-undeclared port itself is still an M1 finding.
        assert len(report.of_class(MisconfigClass.M1)) == 1

    def test_m5b_static_mode_flags_all_undeclared_targets(self):
        deployment = make_deployment(ports=[8080])
        service = make_service(target_port=9999)
        findings = ServiceTargetsUndeclaredPortRule().evaluate(context_for([deployment, service]))
        assert len(findings) == 1

    def test_m5c_detects_headless_port_unavailable(self):
        report = analyze_plan(InjectionPlan(m5c=1))
        assert len(report.of_class(MisconfigClass.M5C)) == 1

    def test_m5c_only_applies_to_headless_services(self):
        deployment = make_deployment(ports=[8080])
        service = make_service(target_port=9999, headless=False)
        observation = observe([deployment, service])
        findings = HeadlessServicePortUnavailableRule().evaluate(
            context_for([deployment, service], observation)
        )
        assert findings == []

    def test_m5d_detects_service_without_target(self):
        report = analyze_plan(InjectionPlan(m5d=1))
        assert len(report.of_class(MisconfigClass.M5D)) == 1

    def test_m5d_ignores_selectorless_services(self):
        service = make_service()
        service.selector = equality_selector()
        assert ServiceWithoutTargetRule().evaluate(context_for([service])) == []

    def test_named_target_port_resolves_correctly(self):
        deployment = make_deployment(ports=[8080])
        deployment.template.spec.containers[0].ports[0] = (
            type(deployment.template.spec.containers[0].ports[0])(8080, name="http")
        )
        service = make_service(target_port="http")
        findings = ServiceTargetsUndeclaredPortRule().evaluate(context_for([deployment, service]))
        assert findings == []

    def test_m5a_ignores_service_without_backends(self):
        service = make_service(selector={"app": "ghost"}, target_port=1234)
        observation = observe([make_deployment(), service])
        findings = ServiceTargetsUnopenedPortRule().evaluate(
            context_for([make_deployment(), service], observation)
        )
        assert findings == []


class TestPolicyRules:
    def test_m6_reported_when_no_policy_exists(self):
        context = context_for([make_deployment()])
        findings = LackOfNetworkPoliciesRule().evaluate(context)
        assert len(findings) == 1
        assert "does not define any NetworkPolicy" in findings[0].message

    def test_m6_reported_when_policies_are_disabled_in_chart(self):
        context = context_for([make_deployment()], disabled_policies=True)
        findings = LackOfNetworkPoliciesRule().evaluate(context)
        assert "disabled by default" in findings[0].message

    def test_m6_reported_when_policy_selects_nothing(self):
        policy = allow_ports_policy("allow", equality_selector(app="other"), [80])
        findings = LackOfNetworkPoliciesRule().evaluate(context_for([make_deployment(), policy]))
        assert len(findings) == 1
        assert "none of them selects" in findings[0].message

    def test_m6_not_reported_when_policy_covers_pods(self):
        policy = deny_all_policy("deny")
        assert LackOfNetworkPoliciesRule().evaluate(context_for([make_deployment(), policy])) == []

    def test_m6_not_reported_for_chart_without_compute_units(self):
        assert LackOfNetworkPoliciesRule().evaluate(context_for([make_service()])) == []

    def test_m7_reported_per_host_network_unit(self):
        objects = [
            make_deployment("a", labels={"app": "a"}, host_network=True),
            make_deployment("b", labels={"app": "b"}, host_network=True),
            make_deployment("c", labels={"app": "c"}),
        ]
        findings = HostNetworkRule().evaluate(context_for(objects))
        assert len(findings) == 2
        assert all(f.misconfig_class is MisconfigClass.M7 for f in findings)


class TestRuleRegistry:
    def test_default_rules_cover_twelve_per_application_classes(self):
        registry = default_rules()
        covered = set()
        for rule in registry:
            covered.update(rule.produces)
        assert covered == set(MisconfigClass) - {MisconfigClass.M4_GLOBAL}

    def test_rules_for_skips_runtime_rules_without_observation(self):
        registry = default_rules()
        context = context_for([make_deployment()])
        applicable = registry.rules_for(context)
        names = {rule.name for rule in applicable}
        assert "UndeclaredOpenPortsRule" not in names
        assert "HostNetworkRule" in names

    def test_covering_lookup(self):
        registry = default_rules()
        assert len(registry.covering(MisconfigClass.M6)) == 1
