"""Tests for the responsible-disclosure tooling (Section 5 / Appendix A)."""

from repro.core import (
    FEEDBACK_QUESTIONNAIRE,
    AnalysisReport,
    DisclosureOutcome,
    Finding,
    LikertAnswer,
    MisconfigClass,
    QuestionnaireResponse,
    Severity,
    build_disclosures,
    summarize_outcomes,
)


def _report(name: str, dataset: str, classes=(MisconfigClass.M1,)) -> AnalysisReport:
    report = AnalysisReport(application=name, dataset=dataset)
    report.add(
        Finding(
            misconfig_class=cls,
            application=name,
            resource=f"Deployment/default/{name}",
            message=f"{cls.value} issue",
            port=8080 if cls is MisconfigClass.M1 else None,
            mitigation="declare the port",
        )
        for cls in classes
    )
    return report


class TestDisclosureReports:
    def test_reports_grouped_by_dataset(self):
        disclosures = build_disclosures(
            [_report("a", "Bitnami"), _report("b", "Bitnami"), _report("c", "Wikimedia")]
        )
        assert [d.organization for d in disclosures] == ["Bitnami", "Wikimedia"]
        assert disclosures[0].total_findings == 2

    def test_explicit_organization_mapping_wins(self):
        disclosures = build_disclosures(
            [_report("a", "Bitnami")], organization_of={"a": "VMware"}
        )
        assert disclosures[0].organization == "VMware"

    def test_affected_applications_excludes_clean_charts(self):
        clean = AnalysisReport(application="clean", dataset="Bitnami")
        disclosures = build_disclosures([_report("a", "Bitnami"), clean])
        assert len(disclosures[0].reports) == 2
        assert [r.application for r in disclosures[0].affected_applications] == ["a"]

    def test_severity_breakdown(self):
        disclosure = build_disclosures(
            [_report("a", "Bitnami", (MisconfigClass.M4A, MisconfigClass.M3))]
        )[0]
        breakdown = disclosure.severity_breakdown()
        assert breakdown[Severity.HIGH] == 1
        assert breakdown[Severity.LOW] == 1

    def test_markdown_contains_threat_model_findings_and_mitigations(self):
        disclosure = build_disclosures([_report("rabbitmq", "Bitnami")])[0]
        markdown = disclosure.to_markdown()
        assert "Threat model" in markdown
        assert "rabbitmq" in markdown
        assert "proposed mitigation" in markdown
        assert "M1" in markdown
        assert "questionnaire" in markdown.lower()


class TestQuestionnaire:
    def test_questionnaire_has_the_core_appendix_questions(self):
        numbers = {question.number for question in FEEDBACK_QUESTIONNAIRE}
        assert {1, 7, 11, 13, 15} <= numbers
        kinds = {question.kind for question in FEEDBACK_QUESTIONNAIRE}
        assert {"text", "options", "likert", "yes/no"} <= kinds

    def test_likert_answers_order(self):
        assert LikertAnswer.STRONGLY_AGREE > LikertAnswer.NEUTRAL > LikertAnswer.STRONGLY_DISAGREE

    def test_label_collision_criticality_detection(self):
        agrees = QuestionnaireResponse("Bitnami", {13: LikertAnswer.AGREE})
        disagrees = QuestionnaireResponse("EEA", {13: LikertAnswer.DISAGREE})
        empty = QuestionnaireResponse("CNCF")
        assert agrees.rates_label_collisions_critical()
        assert not disagrees.rates_label_collisions_critical()
        assert not empty.rates_label_collisions_critical()


class TestOutcomes:
    def test_summary_counts_fixed_applications(self):
        outcomes = [
            DisclosureOutcome("Bitnami", acknowledged=True, applications_fixed=22,
                              response=QuestionnaireResponse("Bitnami",
                                                             {13: LikertAnswer.STRONGLY_AGREE})),
            DisclosureOutcome("EEA", acknowledged=True, applications_fixed=6),
            DisclosureOutcome("Wikimedia", acknowledged=True, applications_fixed=4),
            DisclosureOutcome("CNCF", acknowledged=False),
        ]
        summary = summarize_outcomes(outcomes)
        assert summary["organizations_contacted"] == 4
        assert summary["organizations_acknowledging"] == 3
        assert summary["applications_fixed"] == 32
        assert summary["respondents_rating_label_collisions_critical"] == 1
