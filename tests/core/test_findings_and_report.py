"""Unit tests for the findings model and report aggregation."""

from repro.core import (
    CATALOG,
    TABLE_ORDER,
    AnalysisReport,
    EvaluationSummary,
    Finding,
    MisconfigClass,
    Severity,
    deduplicate_findings,
    format_report_json,
    format_report_markdown,
    format_report_text,
)


def finding(cls=MisconfigClass.M1, app="app", resource="Deployment/default/web", port=None):
    return Finding(misconfig_class=cls, application=app, resource=resource,
                   message="msg", port=port)


class TestCatalog:
    def test_catalog_covers_all_thirteen_classes(self):
        assert len(CATALOG) == 13
        assert set(CATALOG) == set(TABLE_ORDER)

    def test_label_collisions_are_most_severe(self):
        assert CATALOG[MisconfigClass.M4A].severity == Severity.HIGH
        assert CATALOG[MisconfigClass.M3].severity == Severity.LOW

    def test_family_grouping(self):
        assert MisconfigClass.M4_GLOBAL.family == "M4"
        assert MisconfigClass.M5B.family == "M5"
        assert MisconfigClass.M1.family == "M1"

    def test_every_entry_documents_attacks_and_mitigation_path(self):
        for descriptor in CATALOG.values():
            assert descriptor.description
            assert descriptor.issue
            assert descriptor.attacks
            assert descriptor.detection in ("static", "runtime", "hybrid")


class TestFindings:
    def test_finding_severity_comes_from_catalog(self):
        assert finding(MisconfigClass.M4B).severity == Severity.HIGH

    def test_deduplication_by_class_resource_and_port(self):
        findings = [finding(port=80), finding(port=80), finding(port=81)]
        assert len(deduplicate_findings(findings)) == 2

    def test_to_dict_contains_key_fields(self):
        data = finding(port=9090).to_dict()
        assert data["class"] == "M1"
        assert data["port"] == 9090
        assert data["severity"] == "medium"


class TestAnalysisReport:
    def test_add_deduplicates(self):
        report = AnalysisReport(application="app")
        report.add([finding(), finding()])
        assert report.total == 1

    def test_count_by_class_includes_all_classes(self):
        report = AnalysisReport(application="app")
        report.add([finding(MisconfigClass.M1), finding(MisconfigClass.M6, resource="app")])
        counts = report.count_by_class()
        assert counts[MisconfigClass.M1] == 1
        assert counts[MisconfigClass.M6] == 1
        assert counts[MisconfigClass.M7] == 0

    def test_type_count_and_affected(self):
        report = AnalysisReport(application="app")
        assert not report.affected
        report.add([finding(MisconfigClass.M1, port=1), finding(MisconfigClass.M1, port=2),
                    finding(MisconfigClass.M2, resource="x")])
        assert report.affected
        assert report.type_count() == 2

    def test_by_severity(self):
        report = AnalysisReport(application="app")
        report.add([finding(MisconfigClass.M4A), finding(MisconfigClass.M3, port=1)])
        by_severity = report.by_severity()
        assert by_severity[Severity.HIGH] == 1
        assert by_severity[Severity.LOW] == 1


class TestFormatting:
    def _report(self):
        report = AnalysisReport(application="demo", dataset="Bitnami")
        report.add([finding(MisconfigClass.M1, app="demo", port=9999),
                    finding(MisconfigClass.M6, app="demo", resource="demo")])
        return report

    def test_text_format_lists_findings(self):
        text = format_report_text(self._report())
        assert "Application: demo" in text
        assert "[M1]" in text and "[M6]" in text

    def test_text_format_clean_report(self):
        text = format_report_text(AnalysisReport(application="clean"))
        assert "No network misconfigurations" in text

    def test_json_format_is_parseable(self):
        import json

        data = json.loads(format_report_json(self._report()))
        assert data["total"] == 2

    def test_markdown_format_has_table(self):
        markdown = format_report_markdown(self._report())
        assert markdown.startswith("## demo")
        assert "| M1 |" in markdown


class TestEvaluationSummary:
    def _summary(self):
        summary = EvaluationSummary()
        first = AnalysisReport(application="a", dataset="DS1")
        first.add([finding(MisconfigClass.M1, app="a", port=p) for p in range(12)])
        second = AnalysisReport(application="b", dataset="DS1")
        second.add([finding(MisconfigClass.M6, app="b", resource="b")])
        third = AnalysisReport(application="c", dataset="DS2")
        summary.add(first)
        summary.add(second)
        summary.add(third)
        return summary

    def test_totals(self):
        summary = self._summary()
        assert summary.total_applications == 3
        assert summary.affected_applications == 2
        assert summary.total_misconfigurations == 13

    def test_dataset_summaries(self):
        summary = self._summary()
        ds1 = summary.dataset_summary("DS1")
        assert ds1.total_applications == 2
        assert ds1.affected_applications == 2
        assert ds1.counts[MisconfigClass.M1] == 12
        assert ds1.average_per_application == 6.5

    def test_rankings(self):
        summary = self._summary()
        assert summary.top_by_count(1)[0].application == "a"
        assert summary.top_by_types(2)[0].application in {"a", "b"}

    def test_distribution_and_concentration(self):
        summary = self._summary()
        assert summary.distribution() == [12, 1, 0]
        app_share, finding_share = summary.concentration(10)
        assert app_share == 1 / 3
        assert finding_share == 12 / 13

    def test_table2_text_has_total_row(self):
        text = self._summary().table2_text()
        assert "Total" in text
        assert "DS1" in text

    def test_to_dict_round_trip_fields(self):
        data = self._summary().to_dict()
        assert data["total_applications"] == 3
        assert data["datasets"]["DS1"]["total"] == 13
