"""Unit tests for the analyzer orchestration, cluster-wide pass, mitigation
engine and the admission-controller defense."""

import pytest

from repro.cluster import AdmissionError, BehaviorRegistry, Cluster
from repro.core import (
    AnalyzerSettings,
    ApplicationInventory,
    MODE_HYBRID,
    MODE_RUNTIME,
    MODE_STATIC,
    MisconfigClass,
    MisconfigurationAnalyzer,
    MitigationEngine,
    NetworkMisconfigurationAdmission,
    find_cross_application_selector_matches,
    find_global_collisions,
    generate_network_policies,
    global_collision_findings,
)
from repro.datasets import InjectionPlan, build_application
from repro.helm import render_chart
from repro.k8s import Inventory, LabelSet
from repro.probe import RuntimeScanner
from tests.conftest import make_deployment, make_pod, make_service


class TestAnalyzerModes:
    def test_hybrid_mode_detects_static_and_runtime_classes(self, misconfigured_application):
        analyzer = MisconfigurationAnalyzer()
        report = analyzer.analyze_chart(
            misconfigured_application.chart, behaviors=misconfigured_application.behaviors
        )
        assert MisconfigClass.M1 in report.classes_present()
        assert MisconfigClass.M6 in report.classes_present()

    def test_static_mode_only_detects_static_classes(self, misconfigured_application):
        analyzer = MisconfigurationAnalyzer(settings=AnalyzerSettings(mode=MODE_STATIC))
        report = analyzer.analyze_chart(
            misconfigured_application.chart, behaviors=misconfigured_application.behaviors
        )
        present = report.classes_present()
        assert MisconfigClass.M1 not in present
        assert MisconfigClass.M2 not in present
        assert MisconfigClass.M6 in present
        assert MisconfigClass.M7 in present

    def test_clean_application_has_no_findings(self, clean_application):
        analyzer = MisconfigurationAnalyzer()
        report = analyzer.analyze_chart(
            clean_application.chart, behaviors=clean_application.behaviors
        )
        assert report.total == 0

    def test_exact_reproduction_of_injection_plan(self):
        plan = InjectionPlan(m1=2, m2=1, m3=1, m4a=1, m4b=1, m4c=1, m5a=1, m5b=2, m5c=1,
                             m5d=1, m6=True, m7=1)
        app = build_application("plan-check", "Test Org", plan, archetype="microservices")
        report = MisconfigurationAnalyzer().analyze_chart(app.chart, behaviors=app.behaviors)
        got = {cls.value: count for cls, count in report.count_by_class().items() if count}
        expected = {name: count for name, count in plan.expected_counts().items() if count}
        assert got == expected

    def test_double_snapshot_required_for_m2(self):
        plan = InjectionPlan(m2=1)
        app = build_application("snap", "Test Org", plan)
        single = MisconfigurationAnalyzer(settings=AnalyzerSettings(double_snapshot=False))
        report = single.analyze_chart(app.chart, behaviors=app.behaviors)
        assert report.of_class(MisconfigClass.M2) == []
        double = MisconfigurationAnalyzer()
        report = double.analyze_chart(app.chart, behaviors=app.behaviors)
        assert len(report.of_class(MisconfigClass.M2)) == 1

    def test_host_port_filtering_avoids_false_positives(self):
        plan = InjectionPlan(m7=1)
        app = build_application("hostnet", "Test Org", plan)
        with_filter = MisconfigurationAnalyzer()
        report = with_filter.analyze_chart(app.chart, behaviors=app.behaviors)
        assert report.of_class(MisconfigClass.M1) == []
        without_filter = MisconfigurationAnalyzer(
            settings=AnalyzerSettings(host_port_filtering=False)
        )
        report = without_filter.analyze_chart(app.chart, behaviors=app.behaviors)
        # Without the host-port baseline, the node's own services (sshd,
        # kubelet, ...) show up as undeclared open ports: false positives.
        assert len(report.of_class(MisconfigClass.M1)) > 0

    def test_detects_policies_available_but_disabled(self):
        plan = InjectionPlan(m6=True, netpol_mode="disabled")
        app = build_application("disabled-np", "Test Org", plan)
        report = MisconfigurationAnalyzer().analyze_chart(app.chart, behaviors=app.behaviors)
        m6 = report.of_class(MisconfigClass.M6)
        assert len(m6) == 1
        assert "disabled by default" in m6[0].message

    def test_analyze_objects_without_observation(self):
        analyzer = MisconfigurationAnalyzer()
        report = analyzer.analyze_objects([make_deployment()], application="objs")
        assert MisconfigClass.M6 in report.classes_present()


class TestClusterWide:
    def _inventories(self):
        shared = {"app": "metrics-agent"}
        first = Inventory([make_deployment("agent", labels=shared)])
        second = Inventory([make_deployment("agent", labels=shared)])
        third = Inventory([make_deployment("other", labels={"app": "unique"})])
        return [
            ApplicationInventory("app-a", first),
            ApplicationInventory("app-b", second),
            ApplicationInventory("app-c", third),
        ]

    def test_identical_labels_across_apps_detected(self):
        collisions = find_global_collisions(self._inventories())
        assert len(collisions) == 1
        assert collisions[0].applications == {"app-a", "app-b"}

    def test_findings_attributed_to_each_involved_application(self):
        findings = global_collision_findings(self._inventories())
        assert {finding.application for finding in findings} == {"app-a", "app-b"}
        assert all(f.misconfig_class is MisconfigClass.M4_GLOBAL for f in findings)

    def test_cross_application_selector_match(self):
        provider = ApplicationInventory(
            "provider", Inventory([make_deployment("db", labels={"app": "db"})])
        )
        consumer = ApplicationInventory(
            "consumer", Inventory([make_service("db-svc", selector={"app": "db"})])
        )
        collisions = find_cross_application_selector_matches([provider, consumer])
        assert len(collisions) == 1
        assert collisions[0].applications == {"provider", "consumer"}

    def test_no_collision_within_single_application(self):
        single = [ApplicationInventory("solo", Inventory([
            make_deployment("a", labels={"app": "x"}),
            make_deployment("b", labels={"app": "x"}),
        ]))]
        assert find_global_collisions(single) == []

    def test_merge_cluster_wide_appends_to_reports(self):
        analyzer = MisconfigurationAnalyzer(settings=AnalyzerSettings(mode=MODE_STATIC))
        inventories = self._inventories()
        reports = {
            entry.application: analyzer.analyze_objects(
                list(entry.inventory), application=entry.application
            )
            for entry in inventories
        }
        analyzer.merge_cluster_wide(reports, inventories)
        assert MisconfigClass.M4_GLOBAL in reports["app-a"].classes_present()
        assert MisconfigClass.M4_GLOBAL not in reports["app-c"].classes_present()


class TestMitigationEngine:
    def _analyze(self, app):
        analyzer = MisconfigurationAnalyzer()
        return analyzer.analyze_chart(app.chart, behaviors=app.behaviors)

    def test_mitigations_remove_automatable_findings(self):
        plan = InjectionPlan(m1=2, m3=1, m5a=1, m6=True, m7=1)
        app = build_application("fixme", "Test Org", plan, archetype="web")
        report = self._analyze(app)
        rendered = render_chart(app.chart)
        result = MitigationEngine().apply(rendered.objects, report.findings)
        assert result.applied_count >= 5

        cluster = Cluster(name="verify", worker_count=2, behaviors=app.behaviors, seed=13)
        cluster.install(result.objects, app_name="fixme")
        observation = RuntimeScanner(cluster).observe("fixme")
        after = MisconfigurationAnalyzer().analyze_objects(
            result.objects, application="fixme", observation=observation
        )
        for cls in (MisconfigClass.M1, MisconfigClass.M3, MisconfigClass.M6, MisconfigClass.M7):
            assert after.of_class(cls) == [], f"{cls} still present after mitigation"

    def test_m2_mitigation_is_advisory(self):
        plan = InjectionPlan(m2=1)
        app = build_application("dyn", "Test Org", plan)
        report = self._analyze(app)
        rendered = render_chart(app.chart)
        result = MitigationEngine().apply(rendered.objects, report.findings)
        assert result.applied_count == 0
        assert result.advisory_count == 1

    def test_label_collision_mitigation_separates_units(self):
        plan = InjectionPlan(m4a=1)
        app = build_application("collide", "Test Org", plan)
        report = self._analyze(app)
        rendered = render_chart(app.chart)
        result = MitigationEngine().apply(rendered.objects, report.findings)
        after = MisconfigurationAnalyzer(settings=AnalyzerSettings(mode=MODE_STATIC)).analyze_objects(
            result.objects, application="collide"
        )
        assert after.of_class(MisconfigClass.M4A) == []

    def test_generate_network_policies_produces_default_deny_plus_allows(self):
        inventory = Inventory([make_deployment(), make_service()])
        policies = generate_network_policies(inventory, "web")
        names = [policy.name for policy in policies]
        assert "web-default-deny" in names
        assert any(name.startswith("web-allow-") for name in names)

    def test_generated_policies_allow_only_service_ports(self, deployed_cluster):
        inventory = Inventory(
            [obj for obj in deployed_cluster.api.store.all() if obj.kind in ("Deployment", "Service")]
        )
        for policy in generate_network_policies(inventory, "web"):
            deployed_cluster.api.apply(policy)
        attacker = deployed_cluster.running_pod("attacker")
        web = deployed_cluster.running_pod("web-0")
        assert deployed_cluster.connect(attacker, web, 8080).success
        assert not deployed_cluster.connect(attacker, web, 9999).success

    def test_original_objects_are_not_mutated(self):
        plan = InjectionPlan(m7=1)
        app = build_application("immutable", "Test Org", plan)
        rendered = render_chart(app.chart)
        report = self._analyze(app)
        MitigationEngine().apply(rendered.objects, report.findings)
        daemonsets = [obj for obj in rendered.objects if obj.kind == "DaemonSet"]
        assert all(ds.pod_template().spec.host_network for ds in daemonsets)


class TestAdmissionDefense:
    def _guarded_cluster(self, mode="enforce", **kwargs):
        admission = NetworkMisconfigurationAdmission(mode=mode, **kwargs)
        cluster = Cluster(name="guarded", worker_count=1, behaviors=BehaviorRegistry(), seed=2)
        cluster.register_admission_controller(admission)
        return cluster, admission

    def test_host_network_workload_is_rejected(self):
        cluster, _ = self._guarded_cluster()
        with pytest.raises(AdmissionError, match="M7"):
            cluster.install([make_deployment(host_network=True)], app_name="bad")

    def test_label_collision_with_existing_workload_is_rejected(self):
        cluster, _ = self._guarded_cluster()
        cluster.install([make_deployment("first", labels={"app": "shared"})], app_name="first")
        with pytest.raises(AdmissionError, match="M4"):
            cluster.install([make_deployment("second", labels={"app": "shared"})], app_name="second")

    def test_service_without_target_is_rejected(self):
        cluster, _ = self._guarded_cluster()
        with pytest.raises(AdmissionError, match="M5D"):
            cluster.install([make_service("orphan", selector={"app": "ghost"})], app_name="svc")

    def test_service_targeting_undeclared_port_is_rejected(self):
        cluster, _ = self._guarded_cluster()
        with pytest.raises(AdmissionError, match="M5B"):
            cluster.install(
                [make_deployment(), make_service(target_port=9999)], app_name="bad-svc"
            )

    def test_clean_application_is_admitted(self):
        cluster, admission = self._guarded_cluster()
        cluster.install([make_deployment(), make_service()], app_name="ok")
        assert admission.warnings == []

    def test_warn_mode_records_warnings_without_blocking(self):
        cluster, admission = self._guarded_cluster(mode="warn")
        cluster.install([make_deployment(host_network=True), make_service()], app_name="warned")
        assert len(cluster.running_pods()) > 0
        assert any(w.misconfig_class is MisconfigClass.M7 for w in admission.warnings)

    def test_require_network_policies_option(self):
        cluster, _ = self._guarded_cluster(require_network_policies=True)
        with pytest.raises(AdmissionError, match="M6"):
            cluster.install([make_deployment()], app_name="nopolicy")

    def test_reset_clears_warnings(self):
        _, admission = self._guarded_cluster(mode="warn")
        admission.warnings.append("sentinel")  # type: ignore[arg-type]
        admission.reset()
        assert admission.warnings == []

    def test_pod_identity_helper_handles_plain_pods(self):
        cluster, _ = self._guarded_cluster()
        cluster.install([make_pod("standalone", labels={"app": "solo"})], app_name="solo")
        with pytest.raises(AdmissionError, match="M4"):
            cluster.install([make_pod("copycat", labels={"app": "solo"})], app_name="copy")
