"""Unit tests for the synthetic dataset builder, catalogue and attacks."""

import pytest

from repro.core import MODE_STATIC, AnalyzerSettings, MisconfigurationAnalyzer
from repro.datasets import (
    ARCHETYPES,
    DATASETS,
    DATASET_ORDER,
    InjectionPlan,
    NETPOL_DISABLED,
    NETPOL_ENABLED_STRICT,
    NETPOL_NONE,
    build_application,
    build_app_spec,
    build_chart,
    build_dataset,
    build_values,
    expected_dataset_counts,
    plan_dataset,
    run_concourse_attack,
    run_thanos_attack,
    slugify,
    validate_targets,
)
from repro.helm import render_chart


class TestInjectionPlan:
    def test_total_counts_every_class(self):
        plan = InjectionPlan(m1=2, m2=1, m6=True, m7=1, global_collision=True)
        assert plan.total() == 6

    def test_m5b_requires_m1(self):
        with pytest.raises(ValueError):
            InjectionPlan(m5b=1).validate()

    def test_expected_counts_keys_match_table_columns(self):
        assert set(InjectionPlan().expected_counts()) == {
            "M1", "M2", "M3", "M4A", "M4B", "M4C", "M4*", "M5A", "M5B", "M5C", "M5D", "M6", "M7",
        }


class TestBuilder:
    def test_slugify(self):
        assert slugify("Banzai Cloud") == "banzai-cloud"
        assert slugify("European Environment Agency") == "european-environment-agency"
        assert slugify("***") == "app"

    def test_every_archetype_builds_a_clean_app(self):
        analyzer = MisconfigurationAnalyzer()
        for archetype in ARCHETYPES:
            app = build_application(f"clean-{archetype}", "Org", InjectionPlan(),
                                    archetype=archetype)
            report = analyzer.analyze_chart(app.chart, behaviors=app.behaviors)
            assert report.total == 0, f"{archetype} base app is not clean: {report.findings}"

    def test_chart_renders_expected_kinds(self, misconfigured_application):
        rendered = render_chart(misconfigured_application.chart)
        kinds = {obj.kind for obj in rendered.objects}
        assert {"Deployment", "StatefulSet", "Service", "DaemonSet"} <= kinds

    def test_netpol_template_only_present_when_defined(self):
        with_policy = build_application("np", "Org", InjectionPlan(netpol_mode=NETPOL_ENABLED_STRICT))
        without_policy = build_application("nonp", "Org", InjectionPlan(m6=True,
                                                                        netpol_mode=NETPOL_NONE))
        assert with_policy.chart.template_named("networkpolicy.yaml") is not None
        assert without_policy.chart.template_named("networkpolicy.yaml") is None

    def test_disabled_netpol_renders_nothing_until_enabled(self):
        app = build_application("toggle", "Org", InjectionPlan(m6=True, netpol_mode=NETPOL_DISABLED))
        assert render_chart(app.chart).objects_of_kind("NetworkPolicy") == []
        enabled = render_chart(app.chart, overrides={"networkPolicy": {"enabled": True}})
        assert len(enabled.objects_of_kind("NetworkPolicy")) == 1

    def test_values_structure(self):
        spec = build_app_spec("demo", "Org", InjectionPlan(m1=1, m6=True))
        values = build_values(spec)
        assert set(values) == {"components", "services", "networkPolicy"}
        assert values["networkPolicy"]["enabled"] is False

    def test_behaviors_cover_every_component_image(self):
        app = build_application("imgs", "Org", InjectionPlan(m1=1, m2=1, m7=1))
        images = {component.image for component in app.spec.components}
        assert all(image in app.behaviors for image in images)

    def test_host_network_component_builds_daemonset(self):
        app = build_application("hostnet", "Org", InjectionPlan(m7=1))
        rendered = render_chart(app.chart)
        daemonsets = rendered.objects_of_kind("DaemonSet")
        assert len(daemonsets) == 1
        assert daemonsets[0].pod_template().spec.host_network

    def test_global_collision_marker_adds_shared_component(self):
        app = build_application("marked", "Org", InjectionPlan(m6=True, global_collision=True))
        assert app.spec.component("global-metrics-agent") is not None

    def test_unknown_archetype_raises(self):
        with pytest.raises(KeyError):
            build_app_spec("x", "Org", InjectionPlan(), archetype="mainframe")


class TestCatalog:
    def test_targets_sum_to_paper_totals(self):
        validate_targets()

    def test_dataset_order_covers_all_definitions(self):
        assert set(DATASET_ORDER) == set(DATASETS)

    @pytest.mark.parametrize("dataset", DATASET_ORDER)
    def test_planned_totals_match_targets(self, dataset):
        definition = DATASETS[dataset]
        planned = plan_dataset(definition)
        assert len(planned) == definition.targets.total_apps
        totals = {
            "m1": sum(app.plan.m1 for app in planned),
            "m2": sum(app.plan.m2 for app in planned),
            "m3": sum(app.plan.m3 for app in planned),
            "m4a": sum(app.plan.m4a for app in planned),
            "m4b": sum(app.plan.m4b for app in planned),
            "m4c": sum(app.plan.m4c for app in planned),
            "m5a": sum(app.plan.m5a for app in planned),
            "m5b": sum(app.plan.m5b for app in planned),
            "m5c": sum(app.plan.m5c for app in planned),
            "m5d": sum(app.plan.m5d for app in planned),
            "m6": sum(1 for app in planned if app.plan.m6),
            "m7": sum(app.plan.m7 for app in planned),
            "m4_global": sum(1 for app in planned if app.plan.global_collision),
        }
        targets = definition.targets
        for key, value in totals.items():
            assert value == getattr(targets, key), f"{dataset}: {key} mismatch"

    @pytest.mark.parametrize("dataset", DATASET_ORDER)
    def test_affected_and_clean_split(self, dataset):
        definition = DATASETS[dataset]
        planned = plan_dataset(definition)
        affected = [app for app in planned if app.plan.total() > 0]
        assert len(affected) == definition.targets.affected_apps

    def test_app_names_are_unique_within_dataset(self):
        for dataset in DATASET_ORDER:
            planned = plan_dataset(DATASETS[dataset])
            names = [app.name for app in planned]
            assert len(names) == len(set(names)), f"duplicate names in {dataset}"

    def test_plan_is_deterministic(self):
        first = [(app.name, app.plan.expected_counts()) for app in plan_dataset(DATASETS["Bitnami"])]
        second = [(app.name, app.plan.expected_counts()) for app in plan_dataset(DATASETS["Bitnami"])]
        assert first == second

    def test_build_dataset_small_matches_expected_counts(self):
        """End-to-end check on the smallest dataset (CNCF, 10 charts)."""
        from repro.experiments import run_full_evaluation

        apps = build_dataset("CNCF")
        result = run_full_evaluation(applications=apps)
        summary = result.summary.dataset_summary("CNCF")
        got = {cls.value: count for cls, count in summary.counts.items() if count}
        expected = {name: count for name, count in expected_dataset_counts("CNCF").items() if count}
        assert got == expected

    def test_notable_apps_are_included(self):
        planned = plan_dataset(DATASETS["Prometheus C."])
        names = {app.name for app in planned}
        assert "kube-prometheus-stack" in names
        assert "prometheus-node-exporter" in names

    def test_figure3_top_app_has_many_types(self):
        planned = plan_dataset(DATASETS["Prometheus C."])
        stack = next(app for app in planned if app.name == "kube-prometheus-stack")
        assert stack.plan.total() >= 15


class TestAttacks:
    def test_concourse_attack_succeeds_on_default_deployment(self):
        result = run_concourse_attack()
        assert result.succeeded
        assert len(result.tunnel_ports) == 2
        assert result.commands_sent

    def test_thanos_impersonation_succeeds(self):
        result = run_thanos_attack()
        assert result.impersonation_succeeded
        assert "thanos-impersonator" in result.backends_receiving_traffic

    def test_analyzer_flags_the_attack_preconditions(self):
        from repro.datasets import concourse_objects, thanos_objects

        analyzer = MisconfigurationAnalyzer(settings=AnalyzerSettings(mode=MODE_STATIC))
        thanos_report = analyzer.analyze_objects(thanos_objects(), application="thanos")
        assert any(cls.value.startswith("M4") for cls in thanos_report.classes_present())
        concourse_report = analyzer.analyze_objects(concourse_objects(), application="concourse")
        assert "M6" in {cls.value for cls in concourse_report.classes_present()}
