#!/usr/bin/env python
"""Documentation gate: every module (and key entry point) must be documented.

Usage (from the repository root)::

    PYTHONPATH=src python tools/doc_gate.py

Fails (exit code 1) when:

* any module under ``src/repro/**`` lacks a module docstring, or
* any *public entry point* -- a public class, function or method -- in the
  documented-surface modules (``repro/helm/``, ``repro/cluster/session.py``,
  ``repro/core/analyzer.py``) lacks a docstring.

Private names (leading underscore), dunder methods other than ``__init__``
-- whose contract the class docstring owns -- and nested defs are exempt.
The gate is pure AST inspection: it never imports the package, so it runs
anywhere the checkout does.  It sits next to ``tools/coverage_gate.py`` in
the inner-loop checks (see README) and is exercised by the smoke tests.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"

#: Modules whose public classes/functions/methods must carry docstrings.
DOCUMENTED_SURFACE = (
    "helm/",
    "cluster/session.py",
    "core/analyzer.py",
    "faults.py",
    "experiments/delta.py",
    "experiments/evaluation.py",
    "store.py",
)


def _is_public(name: str) -> bool:
    return not name.startswith("_") or name == "__init__"


def _missing_entry_points(tree: ast.Module, relative: str) -> list[str]:
    missing: list[str] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name) and ast.get_docstring(node) is None:
                missing.append(f"{relative}:{node.lineno} def {node.name}")
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            if ast.get_docstring(node) is None:
                missing.append(f"{relative}:{node.lineno} class {node.name}")
            for member in node.body:
                if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if member.name == "__init__":
                    continue  # constructors are covered by the class docstring
                if _is_public(member.name) and ast.get_docstring(member) is None:
                    missing.append(
                        f"{relative}:{member.lineno} {node.name}.{member.name}"
                    )
    return missing


def main() -> int:
    failures: list[str] = []
    for path in sorted(PACKAGE_ROOT.rglob("*.py")):
        relative = path.relative_to(PACKAGE_ROOT).as_posix()
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if ast.get_docstring(tree) is None:
            failures.append(f"{relative}:1 missing module docstring")
        if relative.startswith(DOCUMENTED_SURFACE[0]) or relative in DOCUMENTED_SURFACE[1:]:
            failures.extend(_missing_entry_points(tree, relative))
    if failures:
        print("doc gate: missing docstrings:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"doc gate: ok ({len(list(PACKAGE_ROOT.rglob('*.py')))} modules checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
