#!/usr/bin/env python
"""Result-store garbage collector: prune stale, skewed and orphaned files.

Usage (from the repository root)::

    PYTHONPATH=src python tools/store_gc.py <store-dir>           # dry run
    PYTHONPATH=src python tools/store_gc.py <store-dir> --apply   # delete

Scans a :class:`repro.store.ResultStore` directory and reports (dry run,
the default) or deletes (``--apply``) four classes of garbage:

* **orphan temp files** -- ``*.tmp*`` leftovers from writers that died
  between fsync and rename; they are invisible to readers but waste disk,
* **corrupt entries** -- header, size or digest verification failures,
* **version-skewed entries** -- healthy entries written under a different
  schema version; readers evict them lazily, the GC prunes them eagerly,
* **stale entries** (only with ``--max-age-days N``) -- entries older than
  N days regardless of health, for bounded-retention deployments.

Healthy current-schema entries and the sweep journal are never touched.
Exit code 0 always; the CLI hint in ``repro sweep`` points here.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.store import SCHEMA_VERSION, _parse_entry  # noqa: E402


def scan(root: Path, max_age_days: float | None) -> dict[str, list[Path]]:
    """Classify every file under ``root`` into keep/delete buckets."""
    garbage: dict[str, list[Path]] = {
        "orphan_tmp": [],
        "corrupt": [],
        "version_skew": [],
        "stale": [],
    }
    healthy: list[Path] = []
    cutoff = time.time() - max_age_days * 86400 if max_age_days is not None else None
    for path in sorted(root.rglob("*")):
        if not path.is_file() or path.name.startswith("journal.jsonl"):
            continue
        if ".tmp" in path.name:
            garbage["orphan_tmp"].append(path)
            continue
        if path.suffix != ".entry":
            continue
        try:
            blob = path.read_bytes()
        except OSError:
            garbage["corrupt"].append(path)
            continue
        _, reason = _parse_entry(blob, None, SCHEMA_VERSION)
        if reason == "schema":
            garbage["version_skew"].append(path)
        elif reason is not None:
            garbage["corrupt"].append(path)
        elif cutoff is not None and path.stat().st_mtime < cutoff:
            garbage["stale"].append(path)
        else:
            healthy.append(path)
    garbage["healthy"] = healthy
    return garbage


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code (always 0)."""
    parser = argparse.ArgumentParser(
        description="prune stale/corrupt/orphaned result-store files"
    )
    parser.add_argument("store", help="result-store directory to scan")
    parser.add_argument(
        "--apply",
        action="store_true",
        help="actually delete (default is a dry run that only reports)",
    )
    parser.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="also prune healthy entries older than this many days",
    )
    args = parser.parse_args(argv)
    root = Path(args.store)
    if not root.is_dir():
        print(f"store gc: no store at {root} (nothing to do)")
        return 0

    buckets = scan(root, args.max_age_days)
    healthy = buckets.pop("healthy")
    doomed = [path for paths in buckets.values() for path in paths]
    verb = "deleted" if args.apply else "would delete"
    for label, paths in buckets.items():
        for path in paths:
            print(f"{verb} [{label}] {path.relative_to(root)}")
    if args.apply:
        for path in doomed:
            try:
                os.unlink(path)
            except OSError as exc:
                print(f"store gc: could not delete {path}: {exc}", file=sys.stderr)
    mode = "apply" if args.apply else "dry run"
    print(
        f"store gc ({mode}): {len(healthy)} healthy entries kept, "
        f"{len(doomed)} files {'deleted' if args.apply else 'to delete'}"
    )
    if not args.apply and doomed:
        print("  hint: re-run with --apply to delete them")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
