#!/usr/bin/env python
"""Coverage gate: run the test suite under ``pytest --cov=repro`` when possible.

Usage (from the repository root)::

    PYTHONPATH=src python tools/coverage_gate.py [pytest args...]

Runs the tier-1 suite with line-coverage collection and fails when total
coverage of ``repro`` drops below :data:`BASELINE_PERCENT` -- a floor set
below the seed suite's coverage so the gate only trips on real regressions
(large untested additions), never on noise.

The ``pytest-cov`` plugin is an *optional* dependency: environments without
it (including the offline container this repository is developed in) must
still be able to run the gate script, so a missing plugin downgrades to a
plain tier-1 run plus a warning instead of an import error.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys

#: Fail the gate when total line coverage of ``repro`` drops below this.
BASELINE_PERCENT = 80


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    command = [sys.executable, "-m", "pytest", "-q"]
    if importlib.util.find_spec("pytest_cov") is not None:
        command += [
            "--cov=repro",
            "--cov-report=term-missing:skip-covered",
            f"--cov-fail-under={BASELINE_PERCENT}",
        ]
    else:
        print(
            "coverage gate: pytest-cov is not installed; "
            "running the tier-1 suite without coverage enforcement",
            file=sys.stderr,
        )
    command += argv
    return subprocess.call(command)


if __name__ == "__main__":
    raise SystemExit(main())
