#!/usr/bin/env python3
"""Reproduce the full evaluation of Section 4: Table 2, Figures 3, 4a, 4b.

Builds the synthetic 290-chart catalogue (six organizations), analyzes every
application through the pooled analysis session with the hybrid analyzer,
runs the cluster-wide collision pass, and prints every table/figure of
Section 4.3.  ``--sample N`` restricts the sweep to the first N charts (the
smoke-test harness uses this to exercise the script against a tiny
catalogue).

Runtime: a few seconds on a laptop for the full catalogue.
"""

import argparse
import time

from repro.experiments import (
    compute_stats,
    figure3a,
    figure3b,
    figure4a,
    format_figure3,
    format_figure4a,
    format_stats,
    run_full_evaluation,
    run_netpol_impact,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sample",
        type=int,
        default=0,
        help="restrict the sweep to the first N catalogue charts (0 = all)",
    )
    args = parser.parse_args()
    applications = None
    if args.sample:
        from repro.datasets import build_catalog

        applications = build_catalog()[: args.sample]

    started = time.time()
    result = run_full_evaluation(applications=applications)
    summary = result.summary

    print("=" * 78)
    print("Table 2 - network misconfigurations by dataset")
    print("=" * 78)
    print(summary.table2_text())

    print()
    print("=" * 78)
    print("Section 4.3.1 - headline statistics")
    print("=" * 78)
    print(format_stats(compute_stats(result)))

    print()
    print("=" * 78)
    print("Figure 3a - ten applications with the most misconfigurations")
    print("=" * 78)
    print(format_figure3(figure3a(summary), metric="total"))

    print()
    print("=" * 78)
    print("Figure 3b - ten applications with the most misconfiguration types")
    print("=" * 78)
    print(format_figure3(figure3b(summary), metric="types"))

    print()
    print("=" * 78)
    print("Figure 4a - distribution of misconfigurations per application")
    print("=" * 78)
    print(format_figure4a(figure4a(summary)))

    print()
    print("=" * 78)
    print("Figure 4b - impact of network policies on endpoint reachability")
    print("=" * 78)
    impact = run_netpol_impact(applications=result.applications())
    print(impact.format_text())

    print()
    print(f"total wall-clock time: {time.time() - started:.1f}s")


if __name__ == "__main__":
    main()
