#!/usr/bin/env python3
"""Quickstart: analyze a Helm chart for network misconfigurations.

This example builds a small Helm chart the way a chart author would (values
plus templates), registers the *actual* runtime behaviour of its container
image, and runs the hybrid analyzer.  The chart contains three classic
mistakes from the paper:

* the application listens on an admin port that is never declared (M1);
* the chart declares a metrics port that the application never opens (M3);
* no NetworkPolicy is shipped (M6).
"""

from repro.cluster import BehaviorRegistry, ContainerBehavior, ListenSpec
from repro.core import CATALOG, MisconfigurationAnalyzer, format_report_text
from repro.helm import Chart

VALUES = """
image: acme/payments-api
replicas: 2
service:
  port: 80
  targetPort: 8080
"""

DEPLOYMENT = """
apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-api
  labels:
    app.kubernetes.io/name: payments-api
spec:
  replicas: {{ .Values.replicas }}
  selector:
    matchLabels:
      app.kubernetes.io/name: payments-api
  template:
    metadata:
      labels:
        app.kubernetes.io/name: payments-api
    spec:
      containers:
        - name: api
          image: {{ .Values.image | quote }}
          ports:
            - containerPort: {{ .Values.service.targetPort }}
              name: http
            - containerPort: 9102
              name: metrics
"""

SERVICE = """
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-api
spec:
  selector:
    app.kubernetes.io/name: payments-api
  ports:
    - name: http
      port: {{ .Values.service.port }}
      targetPort: {{ .Values.service.targetPort }}
"""


def main() -> None:
    chart = Chart.from_files(
        "payments-api",
        values_yaml=VALUES,
        templates={"deployment.yaml": DEPLOYMENT, "service.yaml": SERVICE},
        description="Example payments API chart",
    )

    # What the container actually does at runtime: it serves HTTP on 8080 as
    # declared, opens an undeclared debug console on 6060, and never starts
    # the metrics listener that the chart declares on 9102.
    behaviors = BehaviorRegistry()
    behaviors.register(
        "acme/payments-api",
        ContainerBehavior(
            listen_on_declared=True,
            extra_listens=[ListenSpec(port=6060, process="debug-console")],
            ignore_declared_ports={9102},
        ),
    )

    analyzer = MisconfigurationAnalyzer()
    report = analyzer.analyze_chart(chart, behaviors=behaviors)

    print(format_report_text(report))
    print()
    print("Catalogue of misconfiguration classes (Table 1):")
    for descriptor in CATALOG.values():
        print(f"  {descriptor.misconfig_class.value:<4} {descriptor.description}")


if __name__ == "__main__":
    main()
