#!/usr/bin/env python3
"""Compare our analyzer against the eleven state-of-the-art tools (Table 3).

Builds the representative misconfigured charts, runs every re-implemented
tool in its natural mode (static tools on manifests only, runtime/hybrid
tools against the simulated cluster), and prints the detection matrix.
"""

from repro.experiments import PAPER_TABLE3, run_comparison


def main() -> None:
    result = run_comparison()
    print(result.format_text())
    print()
    print("Differences from the paper's Table 3:")
    differences = 0
    for row in result.rows:
        expected = PAPER_TABLE3[row.tool]
        for cls, outcome in row.outcomes.items():
            symbol = {"found": "Y", "partial": "~", "missed": "x", "n/a": "-"}[outcome]
            if symbol != expected[cls.value]:
                differences += 1
                print(f"  {row.tool:<14} {cls.value:<4} paper={expected[cls.value]} ours={symbol}")
    if not differences:
        print("  none - the matrix matches the paper exactly")


if __name__ == "__main__":
    main()
