#!/usr/bin/env python3
"""The two proof-of-concept lateral-movement attacks from Section 2.1.

1. **Concourse -- broken control plane**: the CI web node exposes reverse
   SSH tunnel endpoints on undeclared ephemeral ports; any pod in the flat
   cluster network can send commands to the workers.
2. **Thanos -- service impersonation**: two compute units share a single
   label, so a malicious pod adopting the label receives service traffic.

Both attacks are then re-run after applying the mitigations the paper
proposes (declaring ports + default-deny network policies, unique labels) to
show that they no longer succeed.
"""

from repro.cluster import Cluster
from repro.core import MisconfigurationAnalyzer, MitigationEngine
from repro.datasets import (
    concourse_behaviors,
    concourse_objects,
    run_concourse_attack,
    run_thanos_attack,
    thanos_behaviors,
    thanos_objects,
)
from repro.k8s import deny_all_policy


def concourse_demo() -> None:
    print("=" * 72)
    print("PoC 1: Concourse - broken control plane")
    print("=" * 72)
    result = run_concourse_attack()
    print(f"reverse-tunnel ports opened by the web node: {sorted(result.tunnel_ports)}")
    print(f"reachable from the attacker pod:             {sorted(result.reachable_tunnel_ports)}")
    for command in result.commands_sent:
        print(f"  attacker sends: {command}")
    print(f"attack succeeded: {result.succeeded}")

    # What the analyzer says about the deployment.
    analyzer = MisconfigurationAnalyzer()
    cluster = Cluster(name="concourse-audit", behaviors=concourse_behaviors())
    cluster.install(concourse_objects(), app_name="concourse")
    from repro.probe import RuntimeScanner

    observation = RuntimeScanner(cluster).observe("concourse")
    report = analyzer.analyze_objects(
        concourse_objects(), application="concourse", observation=observation
    )
    print("\nanalyzer findings:")
    for finding in report.findings:
        print(f"  [{finding.misconfig_class.value}] {finding.message}")

    # Mitigation: a default-deny policy blocks the tunnels from other pods.
    print("\nre-running the attack with a default-deny NetworkPolicy in place...")
    defended = Cluster(name="concourse-defended", behaviors=concourse_behaviors())
    defended.install(
        concourse_objects() + [deny_all_policy("default-deny", "default")],
        app_name="concourse",
    )
    mitigated = run_concourse_attack(cluster=defended)
    print(f"attack succeeded after mitigation: {mitigated.succeeded}")


def thanos_demo() -> None:
    print()
    print("=" * 72)
    print("PoC 2: Thanos - service impersonation via label collision")
    print("=" * 72)
    result = run_thanos_attack()
    print(f"legitimate backends:        {sorted(result.legitimate_backends)}")
    print(f"backends receiving traffic: {sorted(result.backends_receiving_traffic)}")
    print(f"impersonation succeeded: {result.impersonation_succeeded}")

    # The analyzer flags the underlying label collision (M4A/M4B family).
    analyzer = MisconfigurationAnalyzer()
    report = analyzer.analyze_objects(thanos_objects(), application="thanos")
    print("\nanalyzer findings:")
    for finding in report.findings:
        print(f"  [{finding.misconfig_class.value}] {finding.message}")

    # Mitigation: make the labels unique, then check the impersonator no
    # longer matches the service selector.
    engine = MitigationEngine()
    patched = engine.apply(thanos_objects(), report.findings)
    cluster = Cluster(name="thanos-defended", behaviors=thanos_behaviors())
    from repro.datasets import malicious_thanos_pod
    from repro.probe import make_attacker_pod
    from repro.cluster import ContainerBehavior

    cluster.behaviors.register("attacker/fake-thanos", ContainerBehavior(listen_on_declared=True))
    cluster.install(patched.objects, app_name="thanos")
    cluster.install([malicious_thanos_pod(), make_attacker_pod()], app_name="attacker")
    binding = cluster.binding_for("thanos-query-frontend")
    receiving = cluster.network.service_backends_receiving(
        cluster.network_policies(), cluster.running_pod("attacker"), binding, 9090
    )
    names = sorted(pod.name for pod in receiving)
    print(f"\nafter mitigation, backends receiving traffic: {names}")
    print(f"impersonation succeeded after mitigation: {'thanos-impersonator' in names}")


if __name__ == "__main__":
    concourse_demo()
    thanos_demo()
