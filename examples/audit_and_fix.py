#!/usr/bin/env python3
"""Audit a misconfigured application, apply the mitigations, and verify.

Workflow demonstrated:

1. build a deliberately misconfigured application (the kind of third-party
   chart the paper's "sharing" datasets contain);
2. run the hybrid analyzer and print the findings;
3. apply the Section 3.5 mitigations automatically (declare missing ports,
   drop dead declarations, fix service targets, generate network policies,
   disable hostNetwork, de-collide labels);
4. re-analyze the patched objects and show that the automatable findings are
   gone;
5. show how the admission-controller defense would have blocked the worst
   offenders at deploy time.
"""

from repro.cluster import Cluster
from repro.core import (
    MisconfigurationAnalyzer,
    MitigationEngine,
    NetworkMisconfigurationAdmission,
    format_report_text,
)
from repro.datasets import InjectionPlan, build_application
from repro.helm import render_chart
from repro.probe import RuntimeScanner


def main() -> None:
    plan = InjectionPlan(m1=2, m3=1, m4a=1, m5a=1, m6=True, m7=1)
    app = build_application(
        "legacy-erp", "Acme Corp", plan, archetype="microservices", dataset="example"
    )

    analyzer = MisconfigurationAnalyzer()
    report = analyzer.analyze_chart(app.chart, behaviors=app.behaviors, dataset="example")
    print("--- before mitigation " + "-" * 50)
    print(format_report_text(report))

    # Apply the automated mitigations on the rendered objects.
    rendered = render_chart(app.chart)
    engine = MitigationEngine()
    result = engine.apply(rendered.objects, report.findings)
    print()
    print(f"applied {result.applied_count} mitigations automatically, "
          f"{result.advisory_count} require manual review:")
    for action in result.actions:
        status = "applied " if action.applied else "advisory"
        print(f"  [{status}] {action.finding.misconfig_class.value}: {action.description}")

    # Re-analyze the patched objects with a fresh runtime observation.
    cluster = Cluster(name="verify", behaviors=app.behaviors)
    cluster.install(result.objects, app_name="legacy-erp")
    observation = RuntimeScanner(cluster).observe("legacy-erp")
    after = analyzer.analyze_objects(
        result.objects, application="legacy-erp", observation=observation, dataset="example"
    )
    print()
    print("--- after mitigation " + "-" * 51)
    print(format_report_text(after))

    # The admission-controller defense, had it been active at deploy time.
    print()
    print("--- admission-time defense " + "-" * 45)
    admission = NetworkMisconfigurationAdmission(mode="warn")
    guarded = Cluster(name="guarded", behaviors=app.behaviors)
    guarded.register_admission_controller(admission)
    guarded.install(render_chart(app.chart), app_name="legacy-erp")
    for warning in admission.warnings:
        print(f"  would warn on {warning.obj}: [{warning.misconfig_class.value}] {warning.message}")


if __name__ == "__main__":
    main()
